// Package memsys is the FlacOS memory system (paper §3.3): a shared
// heterogeneous page table living in global memory, per-node MMUs with
// TLBs and rack-wide shootdown, demand paging that allocates and loads
// pages into global memory, copy-on-write, page migration between the
// local and global tiers, and content-based deduplication.
//
// The page table indexes BOTH kinds of physical memory — interconnect-
// attached global frames and per-node local frames — unifying them into a
// single rack-wide address space. Per the paper's placement analysis, the
// page table itself is shared (it is the structure every node must agree
// on), while VMAs are node-local replicas synchronized with FlacDK's
// replication method, and TLBs are per-node with explicit shootdown.
package memsys

import "fmt"

// PageSize is the size of one page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PTE is a page-table entry: one fabric word encoding validity, protection,
// tier, COW status and the physical frame.
//
//	bit  0      valid
//	bit  1      writable
//	bit  2      global tier (1 = global memory frame, 0 = node-local frame)
//	bit  3      copy-on-write (write faults must copy before writing)
//	bit  4      cold (global frame demoted to the capacity/persistent tier)
//	bit  5      busy (page mid-move between tiers; translations must wait)
//	bits 12..51 frame field:
//	    global: physical global address >> 12
//	    local:  bits 12..43 frame index, bits 44..51 owner node id
type PTE uint64

// PTE flag bits.
const (
	PteValid    PTE = 1 << 0
	PteWritable PTE = 1 << 1
	PteGlobal   PTE = 1 << 2
	PteCOW      PTE = 1 << 3
	// PteCold marks a global frame that tiering demoted to the rack's cold
	// (capacity / modeled-persistent) tier: the mapping stays valid, but
	// every access pays the fabric's ColdNS surcharge until promotion
	// clears the bit. Only meaningful together with PteGlobal.
	PteCold PTE = 1 << 4
	// PteBusy marks a page mid-move between tiers (unmap-before-copy
	// migration): the old frame bits are still encoded, but translations
	// must wait for the mover to install the final entry. Never cached in
	// a TLB.
	PteBusy PTE = 1 << 5
)

const (
	pteFrameShift     = 12
	pteLocalNodeShift = 44
	pteLocalNodeMask  = 0xff
	pteLocalIdxMask   = 0xffffffff
)

// MakeGlobalPTE builds a valid PTE for a global frame at physical address
// phys (PageSize aligned).
func MakeGlobalPTE(phys uint64, writable bool) PTE {
	if phys%PageSize != 0 {
		panic(fmt.Sprintf("memsys: global frame %#x not page aligned", phys))
	}
	p := PteValid | PteGlobal | PTE(phys>>PageShift)<<pteFrameShift
	if writable {
		p |= PteWritable
	}
	return p
}

// MakeLocalPTE builds a valid PTE for local frame idx on node.
func MakeLocalPTE(node int, idx uint32, writable bool) PTE {
	p := PteValid |
		PTE(idx)<<pteFrameShift |
		PTE(node&pteLocalNodeMask)<<pteLocalNodeShift
	if writable {
		p |= PteWritable
	}
	return p
}

// Valid reports whether the entry maps a page.
func (p PTE) Valid() bool { return p&PteValid != 0 }

// Writable reports whether writes are permitted without a fault.
func (p PTE) Writable() bool { return p&PteWritable != 0 }

// Global reports whether the frame is in global memory.
func (p PTE) Global() bool { return p&PteGlobal != 0 }

// COW reports whether the page is copy-on-write.
func (p PTE) COW() bool { return p&PteCOW != 0 }

// Cold reports whether the global frame sits in the cold capacity tier.
func (p PTE) Cold() bool { return p&PteCold != 0 }

// Busy reports whether the page is mid-move between tiers.
func (p PTE) Busy() bool { return p&PteBusy != 0 }

// GlobalPhys returns the global frame's physical address. Panics if the
// entry is not a global mapping — always a kernel bug.
func (p PTE) GlobalPhys() uint64 {
	if !p.Global() {
		panic("memsys: GlobalPhys on local PTE")
	}
	return uint64(p>>pteFrameShift) << PageShift & (1<<52 - 1)
}

// LocalFrame returns the owning node and frame index of a local mapping.
func (p PTE) LocalFrame() (node int, idx uint32) {
	if p.Global() {
		panic("memsys: LocalFrame on global PTE")
	}
	return int(p >> pteLocalNodeShift & pteLocalNodeMask),
		uint32(p >> pteFrameShift & pteLocalIdxMask)
}

// WithCOW returns the entry marked copy-on-write and read-only.
func (p PTE) WithCOW() PTE { return (p | PteCOW) &^ PteWritable }

// String renders the entry for diagnostics.
func (p PTE) String() string {
	if !p.Valid() {
		return "pte<invalid>"
	}
	tier := "local"
	if p.Global() {
		tier = "global"
		if p.Cold() {
			tier = "cold"
		}
	}
	if p.Busy() {
		tier += "+busy"
	}
	return fmt.Sprintf("pte<%s w=%v cow=%v raw=%#x>", tier, p.Writable(), p.COW(), uint64(p))
}
