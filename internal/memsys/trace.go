package memsys

import (
	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// SetTrace attaches the space's TLB-shootdown and page-migration paths
// to r's per-node writers; a nil recorder detaches. Safe to call while
// MMUs are faulting.
func (s *Space) SetTrace(r *trace.Recorder) {
	if s.trw == nil {
		return
	}
	for i := range s.trw {
		s.trw[i].Store(r.Writer(i))
	}
}

// emit records one memsys event on n's writer when tracing is attached.
func (s *Space) emit(n *fabric.Node, kind trace.Kind, a0, a1 uint64) {
	if s.trw == nil {
		return
	}
	if tw := s.trw[n.ID()].Load(); tw != nil {
		tw.Emit(trace.SubMemsys, kind, 0, a0, a1)
	}
}
