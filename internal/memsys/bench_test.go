package memsys

import (
	"fmt"
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

func benchEnv(b *testing.B, nodes int) *env {
	b.Helper()
	f := fabric.New(fabric.Config{GlobalSize: 96 << 20, Nodes: nodes})
	return &env{
		fab:    f,
		frames: NewGlobalFrames(f, 8192),
		arena:  alloc.NewArena(f, 48<<20),
	}
}

func BenchmarkTranslateTLBHit(b *testing.B) {
	e := benchEnv(b, 1)
	s := NewSpace(e.fab, 1, e.frames, e.arena.NodeAllocator(e.fab.Node(0), 0), 64)
	m := s.Attach(e.fab.Node(0), e.arena.NodeAllocator(e.fab.Node(0), 0), nil, 256)
	m.MMap(0x100000, 1, ProtRead|ProtWrite, BackGlobal)
	buf := make([]byte, 8)
	m.Read(0x100000, buf) // fault in + fill TLB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Read(0x100000, buf)
	}
}

func BenchmarkTranslateTLBMissPTWalk(b *testing.B) {
	e := benchEnv(b, 1)
	s := NewSpace(e.fab, 1, e.frames, e.arena.NodeAllocator(e.fab.Node(0), 0), 64)
	m := s.Attach(e.fab.Node(0), e.arena.NodeAllocator(e.fab.Node(0), 0), nil, 256)
	m.MMap(0x100000, 1, ProtRead|ProtWrite, BackGlobal)
	buf := make([]byte, 8)
	m.Read(0x100000, buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FlushTLB()
		m.Read(0x100000, buf)
	}
}

func BenchmarkDemandFault(b *testing.B) {
	e := benchEnv(b, 1)
	s := NewSpace(e.fab, 1, e.frames, e.arena.NodeAllocator(e.fab.Node(0), 0), 2048)
	m := s.Attach(e.fab.Node(0), e.arena.NodeAllocator(e.fab.Node(0), 0), nil, 4096)
	const pages = 2048
	m.MMap(0x100000, pages, ProtRead|ProtWrite, BackGlobal)
	buf := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := 0x100000 + uint64(i%pages)*PageSize
		if i%pages == 0 && i > 0 {
			b.StopTimer()
			m.MUnmap(0x100000, pages) // release so frames recycle
			m.MMap(0x100000, pages, ProtRead|ProtWrite, BackGlobal)
			b.StartTimer()
		}
		m.Read(va, buf)
	}
}

// BenchmarkTLBShootdown measures the rack-wide shootdown cost as receiver
// count grows — the §3.3 scaling consideration for shared page tables.
func BenchmarkTLBShootdown(b *testing.B) {
	for _, nodes := range []int{2, 4, 8} {
		b.Run(bName(nodes), func(b *testing.B) {
			e := benchEnv(b, nodes)
			s := NewSpace(e.fab, 1, e.frames, e.arena.NodeAllocator(e.fab.Node(0), 0), 64)
			mmus := make([]*MMU, nodes)
			for i := range mmus {
				n := e.fab.Node(i)
				mmus[i] = s.Attach(n, e.arena.NodeAllocator(n, 0), nil, 256)
			}
			mmus[0].MMap(0x100000, 1, ProtRead|ProtWrite, BackGlobal)
			buf := make([]byte, 8)
			for _, m := range mmus {
				m.Read(0x100000, buf) // everyone caches the translation
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.shootdown(mmus[0], 0x100000>>PageShift)
			}
		})
	}
}

func bName(n int) string { return fmt.Sprintf("%dnodes", n) }
