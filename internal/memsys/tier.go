package memsys

import (
	"flacos/internal/fabric"
	"flacos/internal/trace"
)

// This file is the memsys half of the tiering loop (internal/tiering holds
// the policy): explicit page movement between the rack's three memory
// tiers —
//
//	node-local DRAM  (fastest, private to one node, LocalStore frames)
//	global warm      (premium interconnect-attached memory)
//	global cold      (capacity / modeled-persistent tier: same frames,
//	                  PteCold set, every access pays the ColdNS surcharge)
//
// All moves are CAS-published against the shared page table under the
// coherence contract. Cold/warm toggles flip a PTE bit on a stationary
// frame, so a racing accessor either sees the old entry or the new one —
// the frame's bytes are the same either way. Frame-MOVING ops (local <->
// global) follow the unmap-before-copy protocol: CAS the entry to its
// busy form, purge every TLB, then copy and install — so a store that
// passed MMU.Write's generation check finished before the purge and is
// captured by the copy. Batch variants amortize the purge to ONE modeled
// IPI per remote MMU per batch via Space.shootdownBatch, issued between
// the busy-marking pass and the copy pass.

// Tier identifies which memory tier currently backs a page.
type Tier uint8

const (
	// TierNone means the page is not mapped.
	TierNone Tier = iota
	// TierLocal means a node-local DRAM frame backs the page.
	TierLocal
	// TierWarm means a premium global frame backs the page.
	TierWarm
	// TierCold means a cold-tier (capacity/persistent) frame backs the page.
	TierCold
)

func (t Tier) String() string {
	switch t {
	case TierLocal:
		return "local"
	case TierWarm:
		return "warm"
	case TierCold:
		return "cold"
	}
	return "none"
}

// TierOf reports the page's current tier and, for TierLocal, the owning
// node (-1 otherwise). One page-table read; the tiering daemon uses it to
// resync its model after a failed move.
func (m *MMU) TierOf(vpn uint64) (Tier, int) {
	p := PTE(m.space.pt.Get(m.node, vpn))
	switch {
	case !p.Valid():
		return TierNone, -1
	case !p.Global():
		node, _ := p.LocalFrame()
		return TierLocal, node
	case p.Cold():
		return TierCold, -1
	default:
		return TierWarm, -1
	}
}

// pageLines is the number of cache lines in one page — the unit charged
// for a whole-page tier move.
const pageLines = PageSize / fabric.LineSize

// traceTierWarm tags a KPromote instant whose destination is the warm
// global tier rather than a node-local store.
const traceTierWarm = ^uint64(0)

// promoteLocalBegin marks a warm or cold global page in-transit toward
// THIS node's local store. Fails (false) when the page is not an exclusive
// global mapping (COW/dedup-shared pages stay put), already mid-move, or a
// racing move wins the CAS. The caller must purge peer TLBs before calling
// promoteLocalFinish.
func (m *MMU) promoteLocalBegin(vpn uint64) (PTE, bool) {
	if m.local == nil {
		return 0, false
	}
	old := PTE(m.space.pt.Get(m.node, vpn))
	if !old.Valid() || !old.Global() || old.COW() || old.Busy() {
		return 0, false
	}
	if m.space.frames.RefCount(m.node, old.GlobalPhys()) != 1 {
		return 0, false // shared frame: promotion would fork the sharing
	}
	if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(old|PteBusy)) {
		return 0, false
	}
	m.tlb.invalidate(vpn)
	return old, true
}

// promoteLocalFinish copies the frame and installs the local mapping for a
// page promoteLocalBegin marked busy. Fails only if the page was unmapped
// mid-move.
func (m *MMU) promoteLocalFinish(vpn uint64, old PTE) bool {
	phys := old.GlobalPhys()
	buf := make([]byte, PageSize)
	m.readFrame(old, 0, buf) // pays global (+cold) read for the transfer
	idx := m.local.Alloc()
	m.local.writeAt(idx, 0, buf)
	m.node.ChargeNS(pageLines * localAccessNS)
	neu := MakeLocalPTE(m.node.ID(), idx, old.Writable())
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old|PteBusy), uint64(neu)) {
		m.stats.Promotions.Add(1)
		m.space.emit(m.node, trace.KPromote, vpn, uint64(m.node.ID()))
		m.space.frames.Unref(m.node, phys)
		return true
	}
	m.local.Free(idx)
	return false
}

// promoteFromCold1 clears a page's cold bit, moving it back into premium
// global memory. The page copy device->DRAM is modeled as one whole-page
// cold access.
func (m *MMU) promoteFromCold1(vpn uint64) bool {
	old := PTE(m.space.pt.Get(m.node, vpn))
	if !old.Valid() || !old.Global() || !old.Cold() || old.Busy() {
		return false
	}
	neu := old &^ PteCold
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(neu)) {
		m.node.ChargeColdAccess(pageLines)
		m.stats.Promotions.Add(1)
		m.space.emit(m.node, trace.KPromote, vpn, traceTierWarm)
		m.tlb.invalidate(vpn)
		return true
	}
	return false
}

// demoteToCold1 marks a warm global page cold. The page copy DRAM->device
// is modeled as one whole-page cold access.
func (m *MMU) demoteToCold1(vpn uint64) bool {
	old := PTE(m.space.pt.Get(m.node, vpn))
	if !old.Valid() || !old.Global() || old.Cold() || old.COW() || old.Busy() {
		return false
	}
	neu := old | PteCold
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(neu)) {
		m.node.ChargeColdAccess(pageLines)
		m.stats.Demotions.Add(1)
		m.space.emit(m.node, trace.KDemote, vpn, 1)
		m.tlb.invalidate(vpn)
		return true
	}
	return false
}

// demoteGlobalBegin marks one of THIS node's local pages in-transit toward
// warm global memory — the owner-initiated inverse of migrateToGlobal,
// used when a page's heat no longer justifies private DRAM. The caller
// must purge peer TLBs before calling demoteGlobalFinish.
func (m *MMU) demoteGlobalBegin(vpn uint64) (PTE, bool) {
	old := PTE(m.space.pt.Get(m.node, vpn))
	if !old.Valid() || old.Global() || old.Busy() {
		return 0, false
	}
	if nodeID, _ := old.LocalFrame(); nodeID != m.node.ID() {
		return 0, false // only the owner demotes its local frames
	}
	if !m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old), uint64(old|PteBusy)) {
		return 0, false
	}
	m.tlb.invalidate(vpn)
	return old, true
}

// demoteGlobalFinish copies the local frame out to a fresh global frame
// and installs the warm mapping. Fails only if the page was unmapped
// mid-move.
func (m *MMU) demoteGlobalFinish(vpn uint64, old PTE) bool {
	_, idx := old.LocalFrame()
	src := m.local.copyOut(idx)
	m.node.ChargeNS(pageLines * localAccessNS)
	phys := m.space.frames.AllocUninit(m.node)
	m.node.Write(fabric.GPtr(phys), src)
	m.node.WriteBackRange(fabric.GPtr(phys), PageSize)
	m.node.InvalidateRange(fabric.GPtr(phys), PageSize)
	neu := MakeGlobalPTE(phys, old.Writable())
	if m.space.pt.CompareAndSwap(m.node, m.pta, vpn, uint64(old|PteBusy), uint64(neu)) {
		m.stats.Demotions.Add(1)
		m.space.emit(m.node, trace.KDemote, vpn, 0)
		m.local.Free(idx)
		return true
	}
	m.space.frames.Unref(m.node, phys)
	return false
}

// batch runs a bit-toggle op over vpns and finishes with one batched
// shootdown covering every page that actually changed. Returns the moved
// pages in input order. (Toggles keep the frame stationary, so purging
// peers after the CAS only delays their cold-accounting, never their data.)
func (m *MMU) batch(vpns []uint64, op func(uint64) bool) []uint64 {
	moved := make([]uint64, 0, len(vpns))
	for _, vpn := range vpns {
		if op(vpn) {
			moved = append(moved, vpn)
		}
	}
	m.space.shootdownBatch(m, moved)
	return moved
}

// batchMove runs the unmap-before-copy protocol over vpns: mark every
// page busy, purge every peer TLB with ONE IPI per remote MMU, then copy
// and install. Returns the pages that moved, in input order.
func (m *MMU) batchMove(vpns []uint64, begin func(uint64) (PTE, bool), finish func(uint64, PTE) bool) []uint64 {
	type pending struct {
		vpn uint64
		old PTE
	}
	pends := make([]pending, 0, len(vpns))
	busy := make([]uint64, 0, len(vpns))
	for _, vpn := range vpns {
		if old, ok := begin(vpn); ok {
			pends = append(pends, pending{vpn, old})
			busy = append(busy, vpn)
		}
	}
	m.space.shootdownBatch(m, busy) // purge peers BEFORE any copy
	moved := make([]uint64, 0, len(pends))
	for _, p := range pends {
		if finish(p.vpn, p.old) {
			moved = append(moved, p.vpn)
		}
	}
	return moved
}

// PromoteToLocalBatch pulls the given global pages into this node's local
// store, one shootdown IPI per remote MMU for the whole batch. Returns the
// pages that moved.
func (m *MMU) PromoteToLocalBatch(vpns []uint64) []uint64 {
	return m.batchMove(vpns, m.promoteLocalBegin, m.promoteLocalFinish)
}

// PromoteFromColdBatch moves the given cold pages back to the warm global
// tier. Returns the pages that moved.
func (m *MMU) PromoteFromColdBatch(vpns []uint64) []uint64 {
	return m.batch(vpns, m.promoteFromCold1)
}

// DemoteToColdBatch moves the given warm global pages to the cold tier.
// Returns the pages that moved.
func (m *MMU) DemoteToColdBatch(vpns []uint64) []uint64 {
	return m.batch(vpns, m.demoteToCold1)
}

// DemoteToGlobalBatch pushes the given pages from this node's local store
// to the warm global tier. Returns the pages that moved.
func (m *MMU) DemoteToGlobalBatch(vpns []uint64) []uint64 {
	return m.batchMove(vpns, m.demoteGlobalBegin, m.demoteGlobalFinish)
}

// PromoteToLocal is the single-page form of PromoteToLocalBatch.
func (m *MMU) PromoteToLocal(vpn uint64) bool {
	return len(m.PromoteToLocalBatch([]uint64{vpn})) == 1
}

// PromoteFromCold is the single-page form of PromoteFromColdBatch.
func (m *MMU) PromoteFromCold(vpn uint64) bool {
	return len(m.PromoteFromColdBatch([]uint64{vpn})) == 1
}

// DemoteToCold is the single-page form of DemoteToColdBatch.
func (m *MMU) DemoteToCold(vpn uint64) bool {
	return len(m.DemoteToColdBatch([]uint64{vpn})) == 1
}

// DemoteToGlobal is the single-page form of DemoteToGlobalBatch.
func (m *MMU) DemoteToGlobal(vpn uint64) bool {
	return len(m.DemoteToGlobalBatch([]uint64{vpn})) == 1
}
