package experiments

import (
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/fs"
	"flacos/internal/ipc"
	"flacos/internal/metrics"
	"flacos/internal/serverless"
)

// DensityConfig parameterizes ablation F.
type DensityConfig struct {
	// Fillers is the number of background containers packed on node 0.
	Fillers int
	Invokes int
}

// DefaultDensity models a hot node (8 co-located containers) next to an
// idle one.
func DefaultDensity() DensityConfig { return DensityConfig{Fillers: 8, Invokes: 500} }

// DensityAblation quantifies §4.1's interference pain point and Figure 3's
// density benefit: when every instance's state lives in global memory, the
// control plane may route an invocation to ANY warm instance, so it picks
// the least-loaded host; a pinned invocation (the disaggregated baseline,
// where state gravity ties the function to one node) eats the hot node's
// interference.
func DensityAblation(cfg DensityConfig) *Result {
	res := &Result{
		Name:   "Ablation F: density-aware routing vs pinned placement under interference",
		Table:  metrics.NewTable("strategy", "host density", "mean invoke"),
		Ratios: map[string]float64{},
	}
	f := fabric.New(fabric.Config{GlobalSize: 128 << 20, Nodes: 2, Latency: fabric.DefaultLatency()})
	dev := fs.NewMemDev(50_000, 60_000)
	fsys := fs.New(f, dev, fs.Config{CacheFrames: 8192})
	reg := serverless.NewRegistry(1_000_000, 1.0) // fast registry; startup is not the subject
	reg.Push(serverless.SyntheticImage("app", 2, 2<<20))
	rtCfg := serverless.DefaultRuntimeConfig()
	rtCfg.InitNS = 1_000_000

	runtimes := []*serverless.NodeRuntime{
		serverless.NewNodeRuntime(f.Node(0), fsys.Mount(f.Node(0)), reg, rtCfg),
		serverless.NewNodeRuntime(f.Node(1), fsys.Mount(f.Node(1)), reg, rtCfg),
	}
	ctl := serverless.NewController(runtimes, ipc.NewServiceTable(f))

	// Pack node 0 with background containers.
	for i := 0; i < cfg.Fillers; i++ {
		name := fmt.Sprintf("filler-%d", i)
		if _, err := ctl.Deploy(name, "app", func(n *fabric.Node, req []byte) []byte { return nil }); err != nil {
			panic(err)
		}
		if _, err := ctl.ScaleUpOn(name, 0); err != nil {
			panic(err)
		}
	}
	// The measured function has instances on BOTH nodes.
	if _, err := ctl.Deploy("target", "app", func(n *fabric.Node, req []byte) []byte { return req }); err != nil {
		panic(err)
	}
	if _, err := ctl.ScaleUpOn("target", 0); err != nil {
		panic(err)
	}
	if _, err := ctl.ScaleUpOn("target", 1); err != nil {
		panic(err)
	}

	im := serverless.DefaultInterference()
	caller := f.Node(1)

	measure := func(invoke func() error) float64 {
		before := caller.VirtualNS()
		for i := 0; i < cfg.Invokes; i++ {
			if err := invoke(); err != nil {
				panic(err)
			}
		}
		return float64(caller.VirtualNS()-before) / float64(cfg.Invokes)
	}

	pinned := measure(func() error {
		_, err := ctl.InvokePinned(caller, "target", []byte("x"), 0, im)
		return err
	})
	var routedHost int
	routed := measure(func() error {
		out, host, err := ctl.InvokeOn(caller, "target", []byte("x"), im)
		_ = out
		routedHost = host
		return err
	})

	density := ctl.Density()
	res.Table.AddRow("pinned-to-hot-node", fmt.Sprintf("%d", density[0]), ns(pinned))
	res.Table.AddRow("flacos-density-aware", fmt.Sprintf("%d", density[routedHost]), ns(routed))
	res.Ratios["pinned/routed invoke latency"] = pinned / routed
	return res
}
