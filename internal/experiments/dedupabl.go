package experiments

import (
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/memsys"
	"flacos/internal/metrics"
)

// DedupConfig parameterizes ablation E.
type DedupConfig struct {
	// DupSets is the number of groups of identical pages; each group has
	// Copies mappings of the same content (e.g. the same shared library
	// text mapped by many processes).
	DupSets int
	Copies  int
	// UniquePages are additional non-duplicated pages.
	UniquePages int
}

// DefaultDedup models many processes mapping the same runtime images.
func DefaultDedup() DedupConfig {
	return DedupConfig{DupSets: 16, Copies: 8, UniquePages: 32}
}

// DedupAblation quantifies §3.3's deduplication: identical global pages
// collapse onto one frame (copy-on-write), shrinking rack memory use.
func DedupAblation(cfg DedupConfig) *Result {
	res := &Result{
		Name:   "Ablation E: content-based page deduplication over global memory",
		Table:  metrics.NewTable("metric", "value"),
		Ratios: map[string]float64{},
	}
	f := fabric.New(fabric.Config{GlobalSize: 256 << 20, Nodes: 2, Latency: fabric.DefaultLatency()})
	frames := memsys.NewGlobalFrames(f, 8192)
	arena := alloc.NewArena(f, 64<<20)
	space := memsys.NewSpace(f, 1, frames, arena.NodeAllocator(f.Node(0), 0), 2048)
	mmu := space.Attach(f.Node(0), arena.NodeAllocator(f.Node(0), 0), memsys.NewLocalStore(f.Node(0)), 512)

	totalPages := cfg.DupSets*cfg.Copies + cfg.UniquePages
	if err := mmu.MMap(0x100000, uint64(totalPages), memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		panic(err)
	}
	page := make([]byte, memsys.PageSize)
	vpnBase := uint64(0x100000 >> memsys.PageShift)
	va := func(i int) uint64 { return (vpnBase + uint64(i)) << memsys.PageShift }
	idx := 0
	for set := 0; set < cfg.DupSets; set++ {
		for j := range page {
			page[j] = byte(set*7 + j%251)
		}
		for c := 0; c < cfg.Copies; c++ {
			mmu.Write(va(idx), page)
			idx++
		}
	}
	for u := 0; u < cfg.UniquePages; u++ {
		for j := range page {
			page[j] = byte(u*13 + j%241 + 101)
		}
		mmu.Write(va(idx), page)
		idx++
	}

	merged := mmu.DedupPass()
	framesAfter := totalPages - merged
	saved := merged * memsys.PageSize

	res.Table.AddRow("mapped pages", fmt.Sprintf("%d", totalPages))
	res.Table.AddRow("pages merged", fmt.Sprintf("%d", merged))
	res.Table.AddRow("frames after dedup", fmt.Sprintf("%d", framesAfter))
	res.Table.AddRow("memory saved", fmt.Sprintf("%d KiB", saved/1024))
	res.Ratios["memory before/after dedup"] = float64(totalPages) / float64(framesAfter)
	res.Ratios["pages merged"] = float64(merged)
	return res
}

var _ = metrics.FormatNS
