package experiments

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/flacdk/delegation"
	"flacos/internal/loadgen"
	"flacos/internal/metrics"
	"flacos/internal/redis"
)

// RedisScaleConfig parameterizes the open-loop RackStore scaling sweep.
type RedisScaleConfig struct {
	// NodeCounts is the scaling axis: each entry runs the workload with
	// that many serving nodes (one worker per node) over ONE shared store.
	NodeCounts []int
	// CombineNodes is the node count at which the combining-vs-baseline
	// throughput gate (>= CombineGate) is enforced.
	CombineNodes int
	// Rounds is barriered measurement rounds per phase.
	Rounds int
	// OpsPerRound is operations per worker per round.
	OpsPerRound int
	// KeySpace is the Zipfian keyspace size (ranks).
	KeySpace int
	// Skew is the Zipfian exponent (YCSB-standard 0.99 by default).
	Skew float64
	// ValueBytes sizes data values; must fit a delegation payload so hot
	// GETs can travel the combining path.
	ValueBytes int
	// LoadFactors are the open-loop offered loads, as fractions of each
	// node count's measured capacity. Factors <= 0.8 gate on achieved >=
	// 0.95x offered; factors > 1 exist to show the saturation knee.
	LoadFactors []float64
	// HotHeat is the decayed per-round access count at which a key is
	// classified hot and routed through the owner's combiner.
	HotHeat float64
	// CombineGate is the combining/baseline throughput ratio that must be
	// met at CombineNodes. The acceptance bar is 1.5x at 8 nodes with the
	// full workload; scaled-down smoke configurations set a lower bar —
	// fixed sweep overheads amortize over fewer operations — that still
	// proves combining wins.
	CombineGate float64
	// CombineDepth is each worker's delegation slots per owner domain: how
	// many hot ops a worker can have in flight per owner per sweep. Depth
	// is what turns per-sweep fan-in from ~1 (nothing to combine) into a
	// round's worth of gathered operations.
	CombineDepth int
	// Seed drives every workload stream; same seed, same workload.
	Seed uint64
}

// DefaultRedisScale matches the acceptance setup: 1..16 serving nodes,
// skew 0.99, combining gate at 8 nodes.
func DefaultRedisScale() RedisScaleConfig {
	return RedisScaleConfig{
		NodeCounts:   []int{1, 2, 4, 8, 16},
		CombineNodes: 8,
		Rounds:       30,
		OpsPerRound:  64,
		KeySpace:     64,
		Skew:         0.99,
		ValueBytes:   48,
		LoadFactors:  []float64{0.5, 0.8, 1.2},
		HotHeat:      1.5,
		CombineGate:  1.5,
		CombineDepth: 32,
		Seed:         1,
	}
}

// RedisScale measures RackStore serving capacity as nodes are added, with
// and without hot-key combining, then replays each capacity through the
// open-loop load generator to report latency under offered load:
//
//   - Scaling: the same Zipfian workload (one worker per serving node,
//     weak scaling) at every node count. Under skew 0.99 a handful of keys
//     absorb most writes; the baseline serves them with per-node CAS
//     publishes that retry against each other, so per-node throughput
//     decays as nodes are added — the hot-key wall.
//   - Combining: the identical op stream, but keys classified hot online
//     (flacdk/alloc hotness counters) are routed through flacdk/delegation
//     to the key's owner node, which serves a whole sweep's fan-in with
//     ONE store operation per key: one Get answers every gathered read,
//     one IncrBy of the summed delta answers every gathered increment.
//   - Open loop: measured per-node service times are replayed against a
//     Poisson arrival schedule at fractions of measured capacity. Sojourn
//     time (queueing + service) gives honest p50/p99 under load, and
//     pushing offered load past capacity exposes the saturation knee that
//     closed-loop (barriered) measurement structurally hides.
//   - Integrity: every data read is pattern-checked (torn detection),
//     every worker's counter observations must be monotone (backwards
//     detection), and every counter's final value must equal the exact
//     sum of acknowledged increments (lost/stale-write detection) — the
//     combining path gets no slack on the coherence contract.
//
// The returned bool reports failure: any integrity violation, a combining
// speedup below CombineGate at CombineNodes, or low-load achieved
// throughput under 0.95x offered.
func RedisScale(cfg RedisScaleConfig) (*Result, bool) {
	res := &Result{
		Name:   "Open-loop RackStore scaling: hot-key combining vs per-node CAS",
		Table:  metrics.NewTable("phase", "config", "metric", "value"),
		Ratios: map[string]float64{},
	}

	maxNodes := 0
	for _, s := range cfg.NodeCounts {
		if s > maxNodes {
			maxNodes = s
		}
	}
	rack := core.Boot(core.Config{Nodes: maxNodes, RedisViews: 256})
	defer rack.Shutdown()

	var rows []loadgen.Row
	violations := 0
	ratioAtGate := 0.0
	lowLoadOK := true
	var headline *scalePhase
	var headlineRow loadgen.Row

	for _, s := range cfg.NodeCounts {
		base := redisScaleServe(rack, cfg, s, false)
		comb := redisScaleServe(rack, cfg, s, true)
		ratio := 0.0
		if base.opsPerSec > 0 {
			ratio = comb.opsPerSec / base.opsPerSec
		}
		res.Table.AddRow("scaling", fmt.Sprintf("%d node(s)", s), "baseline ops/s (virtual)",
			fmt.Sprintf("%.0f", base.opsPerSec))
		res.Table.AddRow("scaling", fmt.Sprintf("%d node(s)", s), "combining ops/s (virtual)",
			fmt.Sprintf("%.0f", comb.opsPerSec))
		res.Table.AddRow("scaling", fmt.Sprintf("%d node(s)", s), "combining/baseline",
			fmt.Sprintf("%.2fx", ratio))
		for _, ph := range []*scalePhase{base, comb} {
			res.Table.AddRow("integrity", fmt.Sprintf("%d node(s) %s", s, ph.mode()),
				"stale/torn/backwards", fmt.Sprintf("%d / %d / %d", ph.stale, ph.torn, ph.backwards))
			violations += ph.violations()
		}
		res.Ratios[fmt.Sprintf("combining/baseline @%d nodes", s)] = ratio
		if s == cfg.CombineNodes {
			ratioAtGate = ratio
		}

		// Open-loop replay of the combined capacity at each offered load.
		sweep := make([]loadgen.Row, 0, len(cfg.LoadFactors))
		for _, fac := range cfg.LoadFactors {
			offered := fac * comb.opsPerSec
			row := loadgen.MeasureRow(s, offered, comb.replayOps(cfg, offered), s)
			sweep = append(sweep, row)
			res.Table.AddRow("open-loop", fmt.Sprintf("%d node(s) %.1fx", s, fac),
				"achieved ops/s | p50 | p99",
				fmt.Sprintf("%.0f | %s | %s", row.AchievedOpsPerSec, ns(float64(row.P50NS)), ns(float64(row.P99NS))))
			if fac <= 0.8 && row.AchievedOpsPerSec < 0.95*offered {
				lowLoadOK = false
			}
		}
		rows = append(rows, sweep...)
		knee := "none"
		if k := loadgen.Knee(sweep, 0.9); k >= 0 {
			knee = fmt.Sprintf("%.1fx capacity", cfg.LoadFactors[k])
		}
		res.Table.AddRow("open-loop", fmt.Sprintf("%d node(s)", s), "saturation knee", knee)
		if s == maxNodes {
			headline = comb
			headlineRow = sweep[0]
		}
	}

	res.Bench = &Bench{
		Name:      "redisscale",
		OpsPerSec: headline.opsPerSec,
		P50NS:     float64(headlineRow.P50NS),
		P99NS:     float64(headlineRow.P99NS),
		Rows:      rows,
	}

	gate := cfg.CombineGate
	if gate == 0 {
		gate = 1.5
	}
	failed := violations > 0 || ratioAtGate < gate || !lowLoadOK
	return res, failed
}

// scaleOpKind is one workload operation type.
type scaleOpKind uint8

const (
	opDataSet scaleOpKind = iota // patterned SET on a data key (never delegated)
	opDataGet                    // pattern-checked GET on a data key
	opCtrIncr                    // INCRBY on a counter key
	opCtrGet                     // monotonicity-checked GET on a counter key
)

// scaleOp is one generated operation.
type scaleOp struct {
	kind  scaleOpKind
	id    int
	key   string
	delta int64
	hot   bool
}

// postedOp is one in-flight combined op: which owner's group carries it
// and at which batch index.
type postedOp struct {
	op    scaleOp
	owner int
	idx   int
}

// scalePhase is one (node count, mode) measurement.
type scalePhase struct {
	nodes    int
	combine  bool
	opsTotal int

	makespanNS uint64
	opsPerSec  float64

	stale, torn, backwards int

	// meanServiceNS is each worker node's mean per-op virtual service
	// time, the open-loop replay's service model.
	meanServiceNS []uint64
}

func (p *scalePhase) mode() string {
	if p.combine {
		return "combining"
	}
	return "baseline"
}

func (p *scalePhase) violations() int { return p.stale + p.torn + p.backwards }

// replayOps expands the phase's measured service profile into an open-loop
// schedule at the offered load: Poisson arrivals, ops dealt round-robin
// across the serving nodes, each costing its node's measured mean service.
func (p *scalePhase) replayOps(cfg RedisScaleConfig, offered float64) []loadgen.Op {
	if offered <= 0 || p.opsTotal == 0 {
		return nil
	}
	arr := loadgen.NewArrivals(cfg.Seed+uint64(p.nodes)*1000, offered)
	ops := make([]loadgen.Op, p.opsTotal)
	for i := range ops {
		srv := i % p.nodes
		ops[i] = loadgen.Op{ArrivalNS: arr.Next(), Server: srv, ServiceNS: p.meanServiceNS[srv]}
	}
	return ops
}

// scaleWorker is one serving node's worker: a view (and server) on its own
// node, workload streams, combining plumbing, and per-worker check state.
type scaleWorker struct {
	w    int
	node *fabric.Node
	view *redis.View
	srv  *redis.Server

	zipf    *loadgen.Zipf
	rnd     *loadgen.Rand
	tracker *redis.HotTracker

	comb    *redis.Combiner       // owner side of this node's domain
	clients []*redis.CombineGroup // per owner domain, this worker's slot stripe

	ops     []scaleOp  // this round's generated ops
	hotOps  []scaleOp  // subset routed through the hot phase
	hotNext int        // baseline mode's cursor into hotOps
	hotQ    []scaleOp  // combining mode's pending hot queue (deferrals refill it)
	deferQ  []scaleOp  // ops pushed to the next cycle, stream order
	posted  []postedOp // hot ops in flight awaiting TryComplete (combining mode)

	batch  []byte              // this round's cold RESP batch
	expect []func(redis.Value) // reply checkers, batch order

	lastSeen map[string]int64 // per counter key, highest value observed
	setSeq   uint64

	executed                int
	pendTorn, pendBackwards int // deferred violation counts (flushViolations)
}

// redisScaleServe runs one (node count, mode) phase: cfg.Rounds barriered
// rounds of the seeded Zipfian workload, one worker per serving node, all
// against the one shared store. Rounds are two-phased: cold ops execute as
// ONE RESP batch per worker per round (MSET/MGET/INCRBY through
// Server.ExecuteBatch — the amortized command surface); hot ops run in
// lockstep one-op cycles so the contention being measured actually
// overlaps (baseline) or gathers into combinable sweeps (combining mode).
// No worker ever spin-waits, so per-node virtual time is pure serving work
// and the makespan is an honest capacity measure.
func redisScaleServe(rack *core.Rack, cfg RedisScaleConfig, nodes int, combine bool) *scalePhase {
	f := rack.Fabric
	ph := &scalePhase{nodes: nodes, combine: combine, meanServiceNS: make([]uint64, nodes)}
	pfx := fmt.Sprintf("%s%d", ph.mode(), nodes)

	var viol struct {
		sync.Mutex
		stale, torn, backwards int
	}
	tally := make([]int64, cfg.KeySpace) // host-side truth: acknowledged increments per counter id

	depth := cfg.CombineDepth
	if depth < 1 {
		depth = 1
	}

	// One delegation domain per serving node (the owner's combining inbox),
	// depth client slots per worker in each so a sweep gathers a real
	// fan-in instead of at most one op per worker.
	doms := make([]*delegation.Domain, nodes)
	for o := range doms {
		doms[o] = delegation.NewDomain(f, nodes*depth)
	}
	workers := make([]*scaleWorker, nodes)
	for w := range workers {
		view := rack.OS(w).RedisView()
		sw := &scaleWorker{
			w:        w,
			node:     f.Node(w),
			view:     view,
			srv:      redis.NewServer(view),
			zipf:     loadgen.NewZipf(loadgen.NewRand(cfg.Seed+uint64(w)*7919), cfg.KeySpace, cfg.Skew),
			rnd:      loadgen.NewRand(cfg.Seed + uint64(w)*104729 + 13),
			tracker:  redis.NewHotTracker(0.5, cfg.HotHeat),
			comb:     redis.NewCombiner(view, doms[w]),
			lastSeen: map[string]int64{},
		}
		sw.clients = make([]*redis.CombineGroup, nodes)
		for o := range sw.clients {
			sw.clients[o] = redis.NewCombineGroup(doms[o], sw.node, w*depth, depth)
		}
		workers[w] = sw
	}

	parallel := func(fn func(sw *scaleWorker)) {
		var wg sync.WaitGroup
		for _, sw := range workers {
			wg.Add(1)
			go func(sw *scaleWorker) { defer wg.Done(); fn(sw) }(sw)
		}
		wg.Wait()
	}

	before := make([]fabric.NodeStatsSnapshot, nodes)
	for i := range before {
		before[i] = f.Node(i).Stats()
	}

	for round := 0; round < cfg.Rounds; round++ {
		parallel(func(sw *scaleWorker) { sw.generate(cfg, pfx, tally) })
		parallel(func(sw *scaleWorker) { sw.execBatch(&viol.Mutex, &viol.torn, &viol.backwards) })
		for {
			remaining := false
			for _, sw := range workers {
				if (combine && len(sw.hotQ) > 0) || (!combine && sw.hotNext < len(sw.hotOps)) {
					remaining = true
					break
				}
			}
			if !remaining {
				break
			}
			if combine {
				parallel(func(sw *scaleWorker) { sw.postMany(nodes, depth) })
				parallel(func(sw *scaleWorker) { sw.comb.ServeSweep() })
				parallel(func(sw *scaleWorker) { sw.completeAll(&viol.Mutex, &viol.torn, &viol.backwards) })
			} else {
				parallel(func(sw *scaleWorker) { sw.execHotOne(&viol.Mutex, &viol.torn, &viol.backwards) })
			}
		}
	}

	// Capacity accounting stops here: the ground-truth pass below is
	// checker work, not serving work, and must not pollute the makespan.
	after := make([]fabric.NodeStatsSnapshot, nodes)
	for i := range after {
		after[i] = f.Node(i).Stats()
	}

	// Final ground-truth pass: every counter's value must equal the exact
	// sum of acknowledged increments — a combined increment that was
	// never published (or published twice) lands here as stale.
	finalStale := 0
	v0 := workers[0].view
	for id := 0; id < cfg.KeySpace; id += 2 {
		want := atomic.LoadInt64(&tally[id])
		if want == 0 {
			continue
		}
		val, ok := v0.Get(counterKey(pfx, id))
		if !ok {
			finalStale++
			continue
		}
		got, err := strconv.ParseInt(string(val), 10, 64)
		if err != nil || got != want {
			finalStale++
		}
	}

	totalOps := 0
	for i, sw := range workers {
		d := after[i].Delta(before[i])
		if d.VirtualNS > ph.makespanNS {
			ph.makespanNS = d.VirtualNS
		}
		if sw.executed > 0 {
			ph.meanServiceNS[i] = d.VirtualNS / uint64(sw.executed)
		}
		if ph.meanServiceNS[i] == 0 {
			ph.meanServiceNS[i] = 1
		}
		totalOps += sw.executed
		sw.view.Barrier() // reclaim this phase's replaced blocks
	}
	ph.opsTotal = totalOps
	if ph.makespanNS > 0 {
		ph.opsPerSec = float64(totalOps) / (float64(ph.makespanNS) / 1e9)
	}
	ph.stale = viol.stale + finalStale
	ph.torn = viol.torn
	ph.backwards = viol.backwards
	return ph
}

func dataKey(pfx string, id int) string    { return fmt.Sprintf("d-%s-%d", pfx, id) }
func counterKey(pfx string, id int) string { return fmt.Sprintf("c-%s-%d", pfx, id) }

// generate draws this round's ops from the worker's seeded streams and
// splits them into the cold batch and the hot list. Even Zipf ranks are
// counter keys (INCRBY-heavy: the CAS-storm victims combining rescues),
// odd ranks are data keys (patterned SET/GET). Classification is pure
// function of the streams, so baseline and combining phases run the
// IDENTICAL op sequence and differ only in execution path.
func (sw *scaleWorker) generate(cfg RedisScaleConfig, pfx string, tally []int64) {
	sw.tracker.Decay()
	sw.ops = sw.ops[:0]
	sw.hotOps = sw.hotOps[:0]
	sw.hotNext = 0
	sw.hotQ = sw.hotQ[:0]
	for i := 0; i < cfg.OpsPerRound; i++ {
		id := sw.zipf.Next()
		var op scaleOp
		op.id = id
		if id%2 == 0 {
			op.key = counterKey(pfx, id)
			if sw.rnd.Float64() < 0.75 {
				op.kind = opCtrIncr
				op.delta = int64(1 + sw.rnd.Intn(4))
			} else {
				op.kind = opCtrGet
			}
		} else {
			op.key = dataKey(pfx, id)
			if sw.rnd.Float64() < 0.5 {
				op.kind = opDataSet
			} else {
				op.kind = opDataGet
			}
		}
		sw.tracker.Touch(op.key)
		// Hot data SETs stay on the cold path: the combiner delegates reads
		// and increments; full-value writes keep the ordinary publish.
		op.hot = sw.tracker.Hot(op.key) && op.kind != opDataSet
		sw.ops = append(sw.ops, op)
		if op.kind == opCtrIncr {
			atomic.AddInt64(&tally[id], op.delta)
		}
	}

	// Build the cold RESP batch: data SETs gathered into one MSET, data
	// GETs into one MGET, counter ops as INCRBY/GET commands — the
	// single-ExecuteBatch command surface under measurement.
	sw.batch = sw.batch[:0]
	sw.expect = sw.expect[:0]
	var msetArgs [][]byte
	var mgetKeys []string
	var mgetOps []scaleOp
	for _, op := range sw.ops {
		if op.hot {
			sw.hotOps = append(sw.hotOps, op)
			sw.hotQ = append(sw.hotQ, op)
			continue
		}
		switch op.kind {
		case opDataSet:
			sw.setSeq++
			val := patternValue(sw.setSeq, op.key, byte(op.id), cfg.ValueBytes)
			msetArgs = append(msetArgs, []byte(op.key), val)
		case opDataGet:
			mgetKeys = append(mgetKeys, op.key)
			mgetOps = append(mgetOps, op)
		case opCtrIncr:
			sw.batch = redis.AppendCommand(sw.batch, []byte("INCRBY"), []byte(op.key),
				[]byte(strconv.FormatInt(op.delta, 10)))
			sw.expect = append(sw.expect, sw.expectCtr(op.key, true))
		case opCtrGet:
			sw.batch = redis.AppendCommand(sw.batch, []byte("GET"), []byte(op.key))
			sw.expect = append(sw.expect, sw.expectCtr(op.key, false))
		}
	}
	if len(msetArgs) > 0 {
		args := append([][]byte{[]byte("MSET")}, msetArgs...)
		sw.batch = redis.AppendCommand(sw.batch, args...)
		sw.expect = append(sw.expect, func(v redis.Value) {
			if v.IsError() || v.Str != "OK" {
				panic("redisscale: MSET rejected: " + v.Str)
			}
		})
	}
	if len(mgetKeys) > 0 {
		args := [][]byte{[]byte("MGET")}
		for _, k := range mgetKeys {
			args = append(args, []byte(k))
		}
		sw.batch = redis.AppendCommand(sw.batch, args...)
		ops := append([]scaleOp(nil), mgetOps...)
		sw.expect = append(sw.expect, func(v redis.Value) {
			sw.checkMGet(v, ops)
		})
	}
}

// expectCtr returns the reply checker for one counter command. ack
// increments must return strictly larger values than anything this worker
// has observed for the key; reads must never go backwards.
func (sw *scaleWorker) expectCtr(key string, incr bool) func(redis.Value) {
	return func(v redis.Value) {
		if v.IsError() {
			panic("redisscale: counter op rejected: " + v.Str)
		}
		if !incr && v.Bulk == nil {
			return // never written yet
		}
		val := v.Int
		if !incr {
			parsed, err := strconv.ParseInt(string(v.Bulk), 10, 64)
			if err != nil {
				sw.noteTorn()
				return
			}
			val = parsed
		}
		sw.observeCtr(key, val, incr)
	}
}

// observeCtr folds one counter observation into the per-worker
// monotonicity check. Deferred violation counters are summed in
// execBatch/completeOne under the shared lock.
func (sw *scaleWorker) observeCtr(key string, val int64, incr bool) {
	last := sw.lastSeen[key]
	if val < last || (incr && val == last) {
		sw.pendBackwards++
	}
	if val > last {
		sw.lastSeen[key] = val
	}
}

// checkMGet validates one MGET reply array against its keys' patterns.
func (sw *scaleWorker) checkMGet(v redis.Value, ops []scaleOp) {
	if v.IsError() || len(v.Array) != len(ops) {
		panic("redisscale: malformed MGET reply")
	}
	for i, e := range v.Array {
		if e.Bulk == nil {
			continue
		}
		if _, intact := checkPattern(e.Bulk, ops[i].key, byte(ops[i].id)); !intact {
			sw.pendTorn++
		}
	}
}

func (sw *scaleWorker) noteTorn() { sw.pendTorn++ }

// execBatch runs the round's cold batch through the worker's own server
// session and applies the queued reply checks.
func (sw *scaleWorker) execBatch(mu *sync.Mutex, torn, backwards *int) {
	if len(sw.batch) > 0 {
		out := sw.srv.ExecuteBatch(nil, sw.batch)
		rest := out
		for _, check := range sw.expect {
			v, n, err := redis.Decode(rest)
			if err != nil {
				panic(err)
			}
			check(v)
			rest = rest[n:]
		}
	}
	sw.executed += len(sw.ops) - len(sw.hotOps)
	sw.flushViolations(mu, torn, backwards)
}

// execHotOne is the baseline hot path: one hot op per lockstep cycle,
// executed directly on the worker's own view — the contended publish the
// combining mode eliminates.
func (sw *scaleWorker) execHotOne(mu *sync.Mutex, torn, backwards *int) {
	if sw.hotNext >= len(sw.hotOps) {
		return
	}
	op := sw.hotOps[sw.hotNext]
	sw.hotNext++
	switch op.kind {
	case opDataGet:
		if val, ok := sw.view.Get(op.key); ok {
			if _, intact := checkPattern(val, op.key, byte(op.id)); !intact {
				sw.pendTorn++
			}
		}
	case opCtrIncr:
		val, err := sw.view.IncrBy(op.key, op.delta)
		if err != nil {
			panic(err)
		}
		sw.observeCtr(op.key, val, true)
	case opCtrGet:
		if val, ok := sw.view.Get(op.key); ok {
			parsed, err := strconv.ParseInt(string(val), 10, 64)
			if err != nil {
				sw.pendTorn++
			} else {
				sw.observeCtr(op.key, parsed, false)
			}
		}
	}
	sw.executed++
	sw.flushViolations(mu, torn, backwards)
}

// postMany publishes up to depth hot ops per owner domain this cycle
// (owner = key hash mod nodes), in stream order. Everything posted into
// one sweep is pairwise concurrent, the combiner serves sweeps in
// canonical order (increments before reads), and completeAll consumes
// replies in the same canonical order — so mixed INCRBY/GET traffic on
// one key can share a sweep and still observe monotone values. The only
// reason to defer an op to the next cycle is a full owner domain; a
// deferred key blocks its later ops too, preserving per-key program
// order, while ops on other keys keep flowing (the checks are per key,
// so cross-key reordering is unobservable).
func (sw *scaleWorker) postMany(nodes, depth int) {
	sw.posted = sw.posted[:0]
	sw.deferQ = sw.deferQ[:0]
	blocked := make(map[string]bool)
	for _, op := range sw.hotQ {
		o := redis.CombineOwner(op.key, nodes)
		if blocked[op.key] || sw.clients[o].Free() == 0 {
			blocked[op.key] = true
			sw.deferQ = append(sw.deferQ, op)
			continue
		}
		var idx int
		if op.kind == opCtrIncr {
			idx = sw.clients[o].PostIncrBy(op.key, op.delta)
		} else {
			idx = sw.clients[o].PostGet(op.key)
		}
		sw.posted = append(sw.posted, postedOp{op: op, owner: o, idx: idx})
	}
	for _, cg := range sw.clients {
		cg.Flush()
	}
	sw.hotQ, sw.deferQ = append(sw.hotQ[:0], sw.deferQ...), sw.hotQ
}

// completeAll consumes every posted hot op's reply in the sweep's
// canonical serve order — increments first, then reads, each class in
// posted order — so the values this worker folds into its monotonicity
// check arrive in the same order the owner linearized them. The owners
// swept between the barriers, so the replies must be present.
func (sw *scaleWorker) completeAll(mu *sync.Mutex, torn, backwards *int) {
	if len(sw.posted) == 0 {
		return
	}
	touched := make([]bool, len(sw.clients))
	for _, p := range sw.posted {
		if !touched[p.owner] {
			touched[p.owner] = true
			sw.clients[p.owner].Refresh()
		}
	}
	for _, p := range sw.posted {
		if p.op.kind == opCtrIncr {
			sw.completePosted(p)
		}
	}
	for _, p := range sw.posted {
		if p.op.kind != opCtrIncr {
			sw.completePosted(p)
		}
	}
	for o, t := range touched {
		if t {
			sw.clients[o].Recycle()
		}
	}
	sw.posted = sw.posted[:0]
	sw.flushViolations(mu, torn, backwards)
}

// completePosted consumes one posted op's reply from its owner group's
// refreshed snapshot.
func (sw *scaleWorker) completePosted(p postedOp) {
	op, cg := p.op, sw.clients[p.owner]
	switch op.kind {
	case opCtrIncr:
		val, done, err := cg.TryIncr(p.idx)
		if err != nil {
			panic(err)
		}
		if !done {
			panic("redisscale: combined INCRBY not served after owner sweep")
		}
		sw.observeCtr(op.key, val, true)
	case opCtrGet:
		val, ok, done, err := cg.TryGet(p.idx)
		if err != nil {
			panic(err)
		}
		if !done {
			panic("redisscale: combined GET not served after owner sweep")
		}
		if ok {
			parsed, perr := strconv.ParseInt(string(val), 10, 64)
			if perr != nil {
				sw.pendTorn++
			} else {
				sw.observeCtr(op.key, parsed, false)
			}
		}
	case opDataGet:
		val, ok, done, err := cg.TryGet(p.idx)
		if err != nil {
			panic(err)
		}
		if !done {
			panic("redisscale: combined GET not served after owner sweep")
		}
		if ok {
			if _, intact := checkPattern(val, op.key, byte(op.id)); !intact {
				sw.pendTorn++
			}
		}
	}
	sw.executed++
}

// flushViolations folds the worker's deferred violation counts into the
// phase totals.
func (sw *scaleWorker) flushViolations(mu *sync.Mutex, torn, backwards *int) {
	if sw.pendTorn == 0 && sw.pendBackwards == 0 {
		return
	}
	mu.Lock()
	*torn += sw.pendTorn
	*backwards += sw.pendBackwards
	mu.Unlock()
	sw.pendTorn, sw.pendBackwards = 0, 0
}
