package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/metrics"
	"flacos/internal/sched"
	"flacos/internal/trace"
)

// TraceConfig parameterizes the flight-recorder overhead experiment.
type TraceConfig struct {
	// Nodes sizes the raw-emission rack.
	Nodes int
	// EmitEvents is how many events the raw-emission phase writes.
	EmitEvents int
	// Tasks is the dispatch-overhead phase's task count (serial
	// submit→wait, so every task crosses the traced hot path).
	Tasks int
	// FSOps is the end-to-end smoke phase's file-op count.
	FSOps int
	// RingCap sizes per-node rings in the smoke phase.
	RingCap uint64
	Seed    int64
}

// DefaultTrace sizes the experiment so the per-event cost and the
// dispatch overhead both come from thousands of samples.
func DefaultTrace() TraceConfig {
	return TraceConfig{
		Nodes:      3,
		EmitEvents: 100_000,
		Tasks:      400,
		FSOps:      200,
		RingCap:    1 << 15,
		Seed:       1,
	}
}

// traceOverheadBudgetPct is the acceptance bound: tracing the scheduler's
// dispatch hot path must cost under this much extra virtual time per task.
const traceOverheadBudgetPct = 15.0

// Trace measures the flight recorder's always-on overhead claim in three
// phases and returns (result, failed):
//
//   - raw emission: one writer streaming events as fast as it can — wall
//     events/sec and the modeled virtual cost per event (one full-line
//     cached write plus one explicit write-back);
//   - dispatch overhead: the same serial submit→wait task stream with
//     tracing off then on, comparing the worker node's virtual time per
//     task. The traced run must stay within traceOverheadBudgetPct and
//     drop zero events at the default ring size;
//   - rack smoke: a booted rack (core.Boot + EnableTrace) running
//     scheduler tasks and file ops, whose merged snapshot must contain
//     both subsystems' events, drop nothing, and render parseable
//     Chrome trace JSON.
func Trace(cfg TraceConfig) (*Result, bool) {
	res := &Result{
		Name:   "Flight recorder: always-on tracing overhead",
		Table:  metrics.NewTable("phase", "metric", "value", "notes"),
		Ratios: map[string]float64{},
	}
	failed := false

	// ---- Phase A: raw emission throughput and per-event cost ----
	{
		f := fabric.New(fabric.Config{
			GlobalSize: 256 << 20, Nodes: cfg.Nodes,
			CacheCapacityLines: -1, Latency: fabric.DefaultLatency(),
		})
		ringCap := uint64(1)
		for ringCap < uint64(cfg.EmitEvents) {
			ringCap <<= 1
		}
		rec := trace.New(f, trace.Config{RingCap: ringCap})
		w := rec.Writer(0)
		before := f.Node(0).Stats()
		start := time.Now()
		for i := 0; i < cfg.EmitEvents; i++ {
			w.Emit(trace.SubApp, trace.KMark, 0, uint64(i), 0)
		}
		wall := time.Since(start)
		d := f.Node(0).Stats().Delta(before)
		perEvent := float64(d.VirtualNS) / float64(cfg.EmitEvents)
		rate := float64(cfg.EmitEvents) / wall.Seconds()
		snap := rec.Collector().Snapshot(f.Node(0), false)
		res.Table.AddRow("emit", "throughput", fmt.Sprintf("%.2gM ev/s", rate/1e6), "wall clock, one writer")
		res.Table.AddRow("emit", "virtual cost", ns(perEvent)+"/event", "full-line write + write-back")
		res.Table.AddRow("emit", "dropped", fmt.Sprintf("%d", snap.TotalDropped()),
			fmt.Sprintf("ring=%d slots", ringCap))
		if snap.TotalDropped() != 0 {
			failed = true
		}
		if got := len(snap.Nodes[0].Events); got != cfg.EmitEvents {
			res.Table.AddRow("emit", "LOST EVENTS", fmt.Sprintf("%d/%d recovered", got, cfg.EmitEvents), "")
			failed = true
		}
	}

	// ---- Phase B: scheduler dispatch hot path, traced vs untraced ----
	runDispatch := func(traced bool) (perTaskNS float64, dropped uint64) {
		f := fabric.New(fabric.Config{
			GlobalSize: 64 << 20, Nodes: 2,
			CacheCapacityLines: -1, Latency: fabric.DefaultLatency(),
		})
		s := sched.New(f, sched.Config{
			Policy: sched.PolicyLocality, WorkersPerNode: 1,
			// Long ticks: between tasks the worker parks on its doorbell,
			// so idle scans don't pollute the per-task virtual cost.
			ReclaimTick: 50 * time.Millisecond,
			IdleTick:    50 * time.Millisecond,
			Seed:        cfg.Seed,
		})
		defer s.Stop()
		var rec *trace.Recorder
		if traced {
			rec = trace.New(f, trace.Config{RingCap: cfg.RingCap})
			s.SetTrace(rec)
		}
		fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
			n.Load64(fabric.GPtr(arg0))
		})
		s.Start()
		n0 := f.Node(0)
		cell := f.Reserve(fabric.LineSize, fabric.LineSize)
		// Warm-up (worker goroutines scheduled, paths warm), then measure.
		for j := 0; j < 8; j++ {
			s.Wait(n0, s.Submit(n0, sched.Task{Fn: fn, Arg0: uint64(cell), Preferred: 1}))
		}
		before := f.Node(1).Stats()
		for j := 0; j < cfg.Tasks; j++ {
			s.Wait(n0, s.Submit(n0, sched.Task{Fn: fn, Arg0: uint64(cell), Preferred: 1}))
		}
		d := f.Node(1).Stats().Delta(before)
		if rec != nil {
			dropped = rec.Collector().Snapshot(n0, false).TotalDropped()
		}
		return float64(d.VirtualNS) / float64(cfg.Tasks), dropped
	}
	plainNS, _ := runDispatch(false)
	tracedNS, dropped := runDispatch(true)
	overheadPct := 100 * (tracedNS - plainNS) / plainNS
	res.Table.AddRow("dispatch", "untraced", ns(plainNS)+"/task", "worker-node virtual time")
	res.Table.AddRow("dispatch", "traced", ns(tracedNS)+"/task",
		fmt.Sprintf("+%.1f%% (budget %.0f%%), dropped=%d", overheadPct, traceOverheadBudgetPct, dropped))
	res.Ratios["traced/untraced dispatch cost"] = tracedNS / plainNS
	if overheadPct > traceOverheadBudgetPct || dropped != 0 {
		failed = true
	}

	// ---- Phase C: booted-rack smoke (sched + fs, merged snapshot) ----
	{
		rack := core.Boot(core.Config{Nodes: 2})
		rec := rack.EnableTrace(trace.Config{RingCap: cfg.RingCap})
		s := rack.Scheduler()
		fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
			n.Load64(fabric.GPtr(rack.HWTable))
		})
		n0 := rack.Fabric.Node(0)
		for j := 0; j < cfg.FSOps; j++ {
			s.Submit(n0, sched.Task{Fn: fn, Preferred: j % 2})
		}
		m := rack.OS(0).Mount
		page := make([]byte, 4096)
		for j := 0; j < cfg.FSOps; j++ {
			id, err := m.Create(fmt.Sprintf("trace-smoke-%d", j))
			if err != nil {
				panic(err)
			}
			if _, err := m.Write(id, 0, page); err != nil {
				panic(err)
			}
		}
		if !s.Drain(n0) {
			panic("trace experiment: smoke drain aborted")
		}
		rack.Shutdown()
		snap := rec.Collector().Snapshot(n0, false)
		bySub := map[trace.Subsys]int{}
		for _, e := range snap.Events {
			bySub[e.Sub]++
		}
		cj := snap.ChromeJSON()
		ok := snap.TotalDropped() == 0 && snap.TotalSkipped() == 0 &&
			bySub[trace.SubSched] > 0 && bySub[trace.SubFS] > 0 && json.Valid(cj)
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
			failed = true
		}
		res.Table.AddRow("smoke", "rack events", fmt.Sprintf("%d merged", snap.Count()),
			fmt.Sprintf("sched=%d fs=%d dropped=%d json=%dB %s",
				bySub[trace.SubSched], bySub[trace.SubFS], snap.TotalDropped(), len(cj), verdict))
	}
	return res, failed
}
