package experiments

import (
	"fmt"

	"flacos/internal/metrics"
	"flacos/internal/torture"
)

// TortureConfig parameterizes the torture matrix: every selected workload
// is swept under every seed.
type TortureConfig struct {
	// Seeds to sweep; each fully determines a fault schedule.
	Seeds []int64
	// Workloads filters by name (empty = all registered).
	Workloads []string
	// Nodes, OpsPerClient, Events size each sweep (zero = torture defaults).
	Nodes        int
	OpsPerClient int
	Events       int
	// Break enables a named deliberately-broken sync path; the matrix is
	// then expected to FAIL (the checkers must catch the bug).
	Break string
}

// DefaultTorture is the nightly-scale matrix.
func DefaultTorture() TortureConfig {
	return TortureConfig{
		Seeds:        []int64{1, 2, 3, 4, 5, 6, 7, 8},
		Nodes:        3,
		OpsPerClient: 400,
		Events:       6,
	}
}

// Torture runs the matrix and returns the rendered table plus the failing
// reports (each carries the seed and compact event trace for replay).
func Torture(cfg TortureConfig) (*Result, []*torture.Report) {
	res := &Result{
		Name:   "torture: seeded rack-wide fault sweep",
		Table:  metrics.NewTable("workload", "seed", "faults", "ops", "events", "flips", "drops", "verdict"),
		Ratios: map[string]float64{},
	}
	names := cfg.Workloads
	if len(names) == 0 {
		for _, w := range torture.Workloads() {
			names = append(names, w.Name())
		}
	}
	var failures []*torture.Report
	for _, name := range names {
		for _, seed := range cfg.Seeds {
			w := torture.ByName(name)
			if w == nil {
				panic(fmt.Sprintf("experiments: unknown torture workload %q", name))
			}
			rep := torture.Run(w, torture.Config{
				Seed:         seed,
				Nodes:        cfg.Nodes,
				OpsPerClient: cfg.OpsPerClient,
				Events:       cfg.Events,
				Break:        cfg.Break,
			})
			res.Table.AddRow(rep.Workload, fmt.Sprintf("%d", rep.Seed), rep.Faults.String(),
				fmt.Sprintf("%d", rep.Ops), fmt.Sprintf("%d", len(rep.Events)),
				fmt.Sprintf("%d", rep.BitFlips), fmt.Sprintf("%d", rep.DroppedWBs), rep.Verdict())
			if !rep.Passed() {
				failures = append(failures, rep)
			}
		}
	}
	return res, failures
}
