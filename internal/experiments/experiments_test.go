package experiments

import (
	"strings"
	"testing"
)

// These tests assert the SHAPES the paper claims — who wins and by
// roughly what factor — using scaled-down workloads so the suite stays
// fast. cmd/flacbench runs the full-size versions.

func TestFig4Shape(t *testing.T) {
	cfg := Fig4Config{Requests: 300, ValueSizes: []int{64, 4096}}
	res := Fig4(cfg)
	if !strings.Contains(res.String(), "flacos-ipc") {
		t.Fatal("missing transport rows")
	}
	for key, ratio := range res.Ratios {
		// Paper: 1.75x-2.4x lower latency for FlacOS. Accept a generous
		// band around it; the invariant is FlacOS wins clearly but not
		// absurdly (which would indicate a cost-model bug).
		if ratio < 1.3 || ratio > 8 {
			t.Errorf("%s = %.2fx outside plausible band [1.3, 8]", key, ratio)
		}
	}
	if len(res.Ratios) != 4 {
		t.Fatalf("expected 4 headline ratios, got %d", len(res.Ratios))
	}
}

func TestContainerShape(t *testing.T) {
	cfg := DefaultContainer()
	cfg.ImageBytes = 64 << 20 // keep the test fast
	cfg.RegistryBytesPerNS = 0.045 / 8
	res := Container(cfg)
	coldFlac := res.Ratios["cold/flacos startup"]
	flacHot := res.Ratios["flacos/hot startup"]
	// Paper: 21.067s -> 5.526s is 3.8x; hot (3.02s) faster than FlacOS.
	if coldFlac < 2 || coldFlac > 10 {
		t.Errorf("cold/flacos = %.2fx outside [2, 10]", coldFlac)
	}
	if flacHot <= 1 {
		t.Errorf("flacos/hot = %.2fx; hot start must be the fastest", flacHot)
	}
}

func TestSyncAblationShape(t *testing.T) {
	cfg := SyncConfig{Ops: 800, NodeCounts: []int{2, 8}, ReadPcts: []int{0, 90}}
	res := SyncAblation(cfg)
	// Each FlacDK method must beat the lock-based baseline at its design
	// point, and the advantage must be clear at rack scale (8 nodes),
	// where lock serialization dominates — §3.2's core claim.
	checks := map[string]float64{
		"lock/replication 8n 90%r": 2.0, // local-replica reads
		"lock/quiescence 8n 90%r":  1.1, // wait-free version reads
		"lock/delegation 8n 0%r":   1.2, // partitioned updates
	}
	for key, min := range checks {
		r, ok := res.Ratios[key]
		if !ok {
			t.Fatalf("missing ratio %q", key)
		}
		if r < min {
			t.Errorf("%s = %.2fx, want >= %.1fx", key, r, min)
		}
	}
}

func TestPageCacheAblationShape(t *testing.T) {
	cfg := PageCacheConfig{Nodes: 4, Files: 4, PagesPer: 16, ReadLoops: 2}
	res := PageCacheAblation(cfg)
	mem := res.Ratios["private/shared memory use"]
	// Per-node caches store ~Nodes copies of the shared working set.
	if mem < 3.5 || mem > 4.5 {
		t.Errorf("private/shared memory = %.2fx, want ~%d", mem, cfg.Nodes)
	}
	dev := res.Ratios["private/shared device reads"]
	if dev < float64(cfg.Nodes)-0.5 {
		t.Errorf("private/shared device reads = %.2fx, want ~%d (shared cache turns other nodes' cold reads into hits)", dev, cfg.Nodes)
	}
}

func TestIPCAblationShape(t *testing.T) {
	cfg := IPCConfig{Rounds: 200, Payloads: []int{64, 4096}}
	res := IPCAblation(cfg)
	for _, size := range []string{"64B", "4096B"} {
		if r := res.Ratios["tcp/ipc "+size]; r <= 1.2 {
			t.Errorf("tcp/ipc %s = %.2fx: shared-memory IPC must beat TCP", size, r)
		}
		if r := res.Ratios["tcp/migration "+size]; r <= 1.2 {
			t.Errorf("tcp/migration %s = %.2fx", size, r)
		}
	}
}

func TestFaultBoxAblationShape(t *testing.T) {
	cfg := FaultBoxConfig{AppCounts: []int{2, 16}, PagesEach: 8}
	res := FaultBoxAblation(cfg)
	small := res.Ratios["horizontal/vertical 2 apps"]
	large := res.Ratios["horizontal/vertical 16 apps"]
	if large <= small {
		t.Errorf("horizontal penalty must grow with density: 2 apps %.2fx, 16 apps %.2fx", small, large)
	}
	if large < 2 {
		t.Errorf("horizontal/vertical at 16 apps = %.2fx, want >= 2", large)
	}
}

func TestDedupAblationShape(t *testing.T) {
	cfg := DedupConfig{DupSets: 4, Copies: 4, UniquePages: 8}
	res := DedupAblation(cfg)
	if got := res.Ratios["pages merged"]; got != float64(cfg.DupSets*(cfg.Copies-1)) {
		t.Errorf("pages merged = %v, want %d", got, cfg.DupSets*(cfg.Copies-1))
	}
	if r := res.Ratios["memory before/after dedup"]; r < 1.5 {
		t.Errorf("dedup saving = %.2fx, want >= 1.5", r)
	}
}

func TestDensityAblationShape(t *testing.T) {
	cfg := DensityConfig{Fillers: 8, Invokes: 100}
	res := DensityAblation(cfg)
	r := res.Ratios["pinned/routed invoke latency"]
	// 8 fillers + the target on the hot node vs 1 instance on the idle one:
	// the interference model predicts roughly 1 + 0.18*8 ≈ 2.4x.
	if r < 1.5 || r > 4 {
		t.Errorf("pinned/routed = %.2fx outside [1.5, 4]", r)
	}
}

func TestTraceShape(t *testing.T) {
	cfg := DefaultTrace()
	cfg.EmitEvents = 20_000 // CI-sized; the per-event cost is deterministic anyway
	cfg.Tasks = 150
	cfg.FSOps = 80
	res, failed := Trace(cfg)
	if failed {
		t.Fatalf("trace experiment failed its acceptance bounds:\n%s", res)
	}
	r := res.Ratios["traced/untraced dispatch cost"]
	if r <= 1.0 {
		t.Errorf("traced/untraced = %.3fx: tracing cannot be free", r)
	}
	if r > 1+traceOverheadBudgetPct/100 {
		t.Errorf("traced/untraced = %.3fx exceeds the %.0f%% budget", r, traceOverheadBudgetPct)
	}
}

func TestSchedAblationShape(t *testing.T) {
	// The placement phase needs its full task count: the p99 gap is a
	// queueing effect, so an undersized run never saturates the workers
	// and measures only claim noise.
	cfg := DefaultSched()
	cfg.CrashTasks = 24
	res := SchedAblation(cfg)
	if r := res.Ratios["random/locality dispatch p99"]; r <= 1.2 {
		t.Errorf("random/locality dispatch p99 = %.2fx: locality-aware placement must beat random", r)
	}
	if r := res.Ratios["tasks surviving node crash"]; r != 1.0 {
		t.Errorf("tasks surviving node crash = %.2f, want 1.0 (exactly-once completion)", r)
	}
}
