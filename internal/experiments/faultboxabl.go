package experiments

import (
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/ipc"
	"flacos/internal/memsys"
	"flacos/internal/metrics"
)

// FaultBoxConfig parameterizes ablation C.
type FaultBoxConfig struct {
	AppCounts []int // total applications on the rack
	PagesEach uint64
}

// DefaultFaultBox sweeps system density.
func DefaultFaultBox() FaultBoxConfig {
	return FaultBoxConfig{AppCounts: []int{2, 8, 32}, PagesEach: 16}
}

// FaultBoxAblation quantifies §3.6's claim: vertical fault boxes keep
// recovery cost proportional to the FAULTY application's state, while the
// horizontal (per-subsystem) model scans every application's state in
// every subsystem, so its cost grows with total system density.
func FaultBoxAblation(cfg FaultBoxConfig) *Result {
	res := &Result{
		Name:   "Ablation C: vertical fault box vs horizontal per-subsystem recovery",
		Table:  metrics.NewTable("apps", "vertical recovery", "horizontal recovery", "horizontal/vertical"),
		Ratios: map[string]float64{},
	}
	for _, apps := range cfg.AppCounts {
		vert := runFaultBoxRecovery(apps, cfg.PagesEach, false)
		horiz := runFaultBoxRecovery(apps, cfg.PagesEach, true)
		ratio := horiz / vert
		res.Table.AddRow(fmt.Sprintf("%d", apps), ns(vert), ns(horiz), fmt.Sprintf("%.2fx", ratio))
		res.Ratios[fmt.Sprintf("horizontal/vertical %d apps", apps)] = ratio
	}
	return res
}

// runFaultBoxRecovery stands up `apps` boxes, crashes the first one's host
// node, and measures the target node's virtual time to recover it.
func runFaultBoxRecovery(apps int, pagesEach uint64, horizontal bool) float64 {
	// Size the rack to the workload: pages, double-buffered checkpoints,
	// and arena headroom.
	boxBytes := (pagesEach + 8) * (memsys.PageSize + 64)
	global := fabric.AlignUp64(uint64(apps)*boxBytes*6+(48<<20), 1<<20)
	f := fabric.New(fabric.Config{
		GlobalSize: global,
		Nodes:      2,
		Latency:    fabric.DefaultLatency(),
	})
	frames := memsys.NewGlobalFrames(f, (pagesEach+8)*uint64(apps)*4)
	arena := alloc.NewArena(f, 24<<20)
	services := ipc.NewServiceTable(f)
	mgr := faultbox.NewManager(f, frames, arena, services)

	page := make([]byte, memsys.PageSize)
	var victim *faultbox.Box
	for i := 0; i < apps; i++ {
		// The victim runs on node 0 (which will crash); bystanders on node 1.
		host := f.Node(1)
		if i == 0 {
			host = f.Node(0)
		}
		b, err := mgr.Create(fmt.Sprintf("app-%d", i), host, faultbox.Config{
			HeapPages: pagesEach, StackPages: 2, Criticality: 1,
		}, nil)
		if err != nil {
			panic(err)
		}
		for p := uint64(0); p < pagesEach; p++ {
			for j := range page {
				page[j] = byte(i + int(p))
			}
			b.MMU().Write(faultbox.HeapVA+p*memsys.PageSize, page)
		}
		b.Checkpoint()
		if i == 0 {
			victim = b
		}
	}
	f.Node(0).Crash()

	target := f.Node(1)
	before := target.VirtualNS()
	var err error
	if horizontal {
		_, err = faultbox.HorizontalRecovery(mgr, victim, target, nil)
	} else {
		_, err = victim.RecoverOn(target, nil, nil)
	}
	if err != nil {
		panic(err)
	}
	return float64(target.VirtualNS() - before)
}

var _ = metrics.FormatNS // keep import shape stable
