package experiments

import (
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/fs"
	"flacos/internal/metrics"
)

// PageCacheConfig parameterizes ablation B.
type PageCacheConfig struct {
	Nodes     int
	Files     int
	PagesPer  int
	ReadLoops int // how many times each node re-reads the file set
}

// DefaultPageCache uses a shared working set (container images, shared
// datasets) read by every node — the §3.4 scenario.
func DefaultPageCache() PageCacheConfig {
	return PageCacheConfig{Nodes: 4, Files: 8, PagesPer: 64, ReadLoops: 2}
}

// PageCacheAblation quantifies §3.4's claim: a shared page cache stores
// one copy of each cached page rack-wide, where per-node caches store one
// copy PER NODE — and the shared copy also turns other nodes' first reads
// into hits, cutting device traffic.
func PageCacheAblation(cfg PageCacheConfig) *Result {
	res := &Result{
		Name:   "Ablation B: shared page cache vs per-node page caches",
		Table:  metrics.NewTable("design", "rack cached pages", "device reads", "hit rate"),
		Ratios: map[string]float64{},
	}
	workingSet := uint64(cfg.Files * cfg.PagesPer)

	// --- FlacOS shared page cache ---
	{
		f := fabric.New(fabric.Config{GlobalSize: 256 << 20, Nodes: cfg.Nodes, Latency: fabric.DefaultLatency()})
		dev := fs.NewMemDev(50_000, 60_000)
		fsys := fs.New(f, dev, fs.Config{CacheFrames: workingSet * 2})
		mounts := make([]*fs.Mount, cfg.Nodes)
		for i := range mounts {
			mounts[i] = fsys.Mount(f.Node(i))
		}
		ids := prepareFiles(mounts[0], dev, cfg)
		// Start cache-cold, like the baseline: the working set lives on the
		// device; the first reader faults it into the shared cache once.
		mounts[0].DropCaches()
		baseReads := dev.Reads()
		var hits, misses uint64
		buf := make([]byte, cfg.PagesPer*fs.PageSize)
		for loop := 0; loop < cfg.ReadLoops; loop++ {
			for _, m := range mounts {
				for _, id := range ids {
					m.Read(id, 0, buf)
				}
			}
		}
		for _, m := range mounts {
			h, ms := m.CacheStats()
			hits += h
			misses += ms
		}
		cached := fsys.CachedPages(f.Node(0))
		hitRate := float64(hits) / float64(hits+misses)
		res.Table.AddRow("flacos-shared", fmt.Sprintf("%d", cached),
			fmt.Sprintf("%d", dev.Reads()-baseReads), fmt.Sprintf("%.1f%%", hitRate*100))
		res.Ratios["shared cache pages"] = float64(cached)
		res.Ratios["shared device reads"] = float64(dev.Reads() - baseReads)
	}

	// --- Per-node private caches (disaggregated baseline) ---
	{
		f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: cfg.Nodes, Latency: fabric.DefaultLatency()})
		dev := fs.NewMemDev(50_000, 60_000)
		// Seed the device directly: the baseline has no shared FS.
		page := make([]byte, fs.PageSize)
		for fid := 1; fid <= cfg.Files; fid++ {
			for p := 0; p < cfg.PagesPer; p++ {
				for i := range page {
					page[i] = byte(fid * (p + 1))
				}
				dev.WritePage(f.Node(0), uint64(fid), uint32(p), page)
			}
		}
		baseReads := dev.Reads()
		locals := make([]*fs.LocalCacheMount, cfg.Nodes)
		var hits, misses, rackPages uint64
		buf := make([]byte, cfg.PagesPer*fs.PageSize)
		for i := range locals {
			locals[i] = fs.NewLocalCacheMount(f.Node(i), dev)
		}
		for loop := 0; loop < cfg.ReadLoops; loop++ {
			for _, lc := range locals {
				for fid := 1; fid <= cfg.Files; fid++ {
					lc.Read(uint64(fid), 0, buf)
				}
			}
		}
		for _, lc := range locals {
			h, ms := lc.CacheStats()
			hits += h
			misses += ms
			rackPages += lc.CachedPages()
		}
		hitRate := float64(hits) / float64(hits+misses)
		res.Table.AddRow("per-node-private", fmt.Sprintf("%d", rackPages),
			fmt.Sprintf("%d", dev.Reads()-baseReads), fmt.Sprintf("%.1f%%", hitRate*100))
		res.Ratios["private/shared memory use"] = float64(rackPages) / res.Ratios["shared cache pages"]
		if res.Ratios["shared device reads"] > 0 {
			res.Ratios["private/shared device reads"] =
				float64(dev.Reads()-baseReads) / res.Ratios["shared device reads"]
		}
	}
	return res
}

// prepareFiles writes the shared working set through mount m and fsyncs it
// to the device, returning the file ids.
func prepareFiles(m *fs.Mount, dev *fs.MemDev, cfg PageCacheConfig) []uint64 {
	ids := make([]uint64, cfg.Files)
	page := make([]byte, fs.PageSize)
	for i := 0; i < cfg.Files; i++ {
		id, err := m.Create(fmt.Sprintf("/data/file-%d", i))
		if err != nil {
			panic(err)
		}
		for p := 0; p < cfg.PagesPer; p++ {
			for j := range page {
				page[j] = byte((i + 1) * (p + 1))
			}
			m.Write(id, uint64(p)*fs.PageSize, page)
		}
		m.Fsync(id)
		ids[i] = id
	}
	return ids
}
