package experiments

import (
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/fs"
	"flacos/internal/metrics"
	"flacos/internal/serverless"
)

// ContainerConfig parameterizes the §4.2 container-startup experiment.
type ContainerConfig struct {
	// ImageBytes is the container image size. The paper uses a 4 GiB
	// PyTorch image; the default scales it to 512 MiB so the simulation's
	// real memory footprint stays laptop-sized, with the registry's
	// bandwidth scaled by the same factor so PHASE PROPORTIONS (and hence
	// the speedup factors) match the paper.
	ImageBytes uint64
	Layers     int
	// RegistryBytesPerNS is the WAN pull bandwidth.
	RegistryBytesPerNS float64
	// RegistryRTTNS covers auth + manifest round trips.
	RegistryRTTNS int
	Runtime       serverless.RuntimeConfig
}

// DefaultContainer reproduces the paper's proportions at 1/8 scale.
func DefaultContainer() ContainerConfig {
	return ContainerConfig{
		ImageBytes:         512 << 20,
		Layers:             8,
		RegistryBytesPerNS: 0.045, // calibrated so cold/flacos lands near the paper's 3.8x
		RegistryRTTNS:      800_000_000,
		Runtime:            serverless.DefaultRuntimeConfig(),
	}
}

// Container reproduces the container-startup experiment: node 0 cold-
// starts an image, then node 1 starts the same image (the paper's
// measured case) — a full cold start without FlacOS, a shared-page-cache
// start with FlacOS — and finally node 1 starts it again hot.
func Container(cfg ContainerConfig) *Result {
	res := &Result{
		Name:   "§4.2 container startup: cold vs FlacOS shared page cache vs hot",
		Table:  metrics.NewTable("start", "source", "total", "manifest", "fetch", "unpack", "init"),
		Ratios: map[string]float64{},
	}

	f := fabric.New(fabric.Config{
		GlobalSize: cfg.ImageBytes*2 + (256 << 20),
		Nodes:      2,
		Latency:    fabric.DefaultLatency(),
	})
	dev := fs.NewMemDev(50_000, 60_000)
	fsys := fs.New(f, dev, fs.Config{CacheFrames: cfg.ImageBytes/4096 + 1024})
	reg := serverless.NewRegistry(cfg.RegistryRTTNS, cfg.RegistryBytesPerNS)
	reg.Push(serverless.SyntheticImage("pytorch", cfg.Layers, cfg.ImageBytes))

	rt0 := serverless.NewNodeRuntime(f.Node(0), fsys.Mount(f.Node(0)), reg, cfg.Runtime)
	rt1 := serverless.NewNodeRuntime(f.Node(1), fsys.Mount(f.Node(1)), reg, cfg.Runtime)

	add := func(label string, r serverless.StartupReport) {
		res.Table.AddRow(label, r.Source.String(),
			fmt.Sprintf("%.3fs", serverless.Seconds(r.TotalNS)),
			fmt.Sprintf("%.3fs", serverless.Seconds(r.ManifestNS)),
			fmt.Sprintf("%.3fs", serverless.Seconds(r.FetchNS)),
			fmt.Sprintf("%.3fs", serverless.Seconds(r.UnpackNS)),
			fmt.Sprintf("%.3fs", serverless.Seconds(r.InitNS)))
	}

	cold, err := rt0.StartContainer("pytorch")
	if err != nil {
		panic(err)
	}
	add("node0 first start (no FlacOS = cold)", cold)

	flac, err := rt1.StartContainer("pytorch")
	if err != nil {
		panic(err)
	}
	add("node1 start (FlacOS shared cache)", flac)

	hot, err := rt1.StartContainer("pytorch")
	if err != nil {
		panic(err)
	}
	add("node1 restart (hot)", hot)

	res.Ratios["cold/flacos startup"] = float64(cold.TotalNS) / float64(flac.TotalNS)
	res.Ratios["flacos/hot startup"] = float64(flac.TotalNS) / float64(hot.TotalNS)
	return res
}
