package experiments

import (
	"fmt"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/metrics"
	"flacos/internal/sched"
)

// SchedConfig parameterizes ablation G (coordinated scheduling).
type SchedConfig struct {
	// Nodes and WorkersPerNode size the rack for the placement phase.
	Nodes, WorkersPerNode int
	// Tasks is the placement-phase task count; each task owns RegionLines
	// cache lines of working set, warm on its home node.
	Tasks, RegionLines int
	// CrashTasks is the crash-phase task count (all routed at the node
	// that dies); CrashTaskNS is each one's modeled service time.
	CrashTasks  int
	CrashTaskNS int
	Seed        int64
}

// DefaultSched exercises a 4-node rack: enough nodes that random
// placement lands three quarters of the work cache-cold, and enough
// tasks per worker that the p99 reflects steady-state queueing rather
// than startup.
func DefaultSched() SchedConfig {
	return SchedConfig{
		Nodes: 4, WorkersPerNode: 2,
		Tasks: 200, RegionLines: 512,
		CrashTasks: 48, CrashTaskNS: 200_000,
		Seed: 1,
	}
}

// sleepScale stretches each task's modeled (virtual-ns) memory cost into
// real sleep time so queueing dynamics reflect the cost model without
// CPU contention — spinning would serialize on small hosts and drown the
// signal in scheduler noise.
const sleepScale = 4

// SchedAblation measures the coordinated scheduler's two claims.
//
// Phase A (placement): every task owns a working set pre-warmed into its
// home node's cache. Locality-aware placement runs the task where its
// pages are hot (LocalNS per access); random placement mostly lands it
// cache-cold (GlobalNS + hops per access). Each task sleeps for its own
// accrued virtual cost, so wall-clock dispatch latency reflects the
// modeled costs: slower service backs up the run queues, and random
// placement pays on dispatch p99, not just on service time — the
// paper's argument that placement must see memory locality once memory
// is rack-wide.
//
// Phase B (failure): every task targets one node, that node crashes
// mid-run, and the survivors' lease keepers reclaim the in-flight tasks.
// The phase reports completion (must be total) and re-dispatch latency —
// the crash-to-restart cost of §3's failure-isolation design.
func SchedAblation(cfg SchedConfig) *Result {
	res := &Result{
		Name:   "Ablation G: coordinated scheduling — locality placement and crash re-dispatch",
		Table:  metrics.NewTable("phase", "policy", "tasks", "throughput", "p50 dispatch", "p99 dispatch"),
		Ratios: map[string]float64{},
	}

	// ---- Phase A: locality-aware vs random placement ----
	runPlacement := func(policy sched.Policy) (p50, p99, thr float64) {
		f := fabric.New(fabric.Config{
			GlobalSize: 256 << 20, Nodes: cfg.Nodes,
			CacheCapacityLines: -1, Latency: fabric.DefaultLatency(),
		})
		s := sched.New(f, sched.Config{
			Policy: policy, WorkersPerNode: cfg.WorkersPerNode,
			// Let a queued task wait a beat for its warm node before it
			// can be stolen cold: long enough to matter, short enough
			// that a busy node's backlog still gets rescued.
			StealGrace: 500 * time.Microsecond,
			// No node dies in this phase; a lazy lease clock keeps keeper
			// scheduling jitter from triggering false reclaims that would
			// re-run (and re-time) tasks.
			ReclaimTick: 50 * time.Millisecond,
			Seed:        cfg.Seed,
		})
		defer s.Stop()

		// Per-task working sets, warmed into the home node's cache.
		lines := uint64(cfg.RegionLines)
		region := f.Reserve(uint64(cfg.Tasks)*lines*fabric.LineSize, fabric.LineSize)
		for j := 0; j < cfg.Tasks; j++ {
			home := f.Node(j % cfg.Nodes)
			base := region.Add(uint64(j) * lines * fabric.LineSize)
			for l := uint64(0); l < lines; l++ {
				home.Load64(base.Add(l * fabric.LineSize))
			}
		}
		fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
			base := fabric.GPtr(arg0)
			v0 := n.VirtualNS()
			for l := uint64(0); l < arg1; l++ {
				n.Load64(base.Add(l * fabric.LineSize)) // hit at home, miss elsewhere
			}
			time.Sleep(time.Duration(sleepScale*(n.VirtualNS()-v0)) * time.Nanosecond)
		})
		s.Start()

		// Warm-up round: make sure every node's workers are actually
		// scheduled and the spin calibration has run before the clock
		// starts, then discard the warm-up's latency samples.
		n0 := f.Node(0)
		for j := 0; j < cfg.Nodes*cfg.WorkersPerNode; j++ {
			s.Submit(n0, sched.Task{Fn: fn, Arg0: uint64(region), Arg1: 1, Preferred: j % cfg.Nodes})
		}
		if !s.Drain(n0) {
			panic("sched experiment: warm-up drain aborted")
		}
		s.DispatchHist().Reset()

		start := time.Now()
		for j := 0; j < cfg.Tasks; j++ {
			pref := j % cfg.Nodes
			if policy == sched.PolicyRandom {
				pref = -1 // the baseline is blind to locality
			}
			s.Submit(n0, sched.Task{
				Fn:   fn,
				Arg0: uint64(region.Add(uint64(j) * lines * fabric.LineSize)),
				Arg1: lines, Preferred: pref,
			})
		}
		if !s.Drain(n0) {
			panic("sched experiment: placement drain aborted")
		}
		el := time.Since(start).Seconds()
		h := s.DispatchHist()
		return h.Percentile(50), h.Percentile(99), float64(cfg.Tasks) / el
	}

	locP50, locP99, locThr := runPlacement(sched.PolicyLocality)
	rndP50, rndP99, rndThr := runPlacement(sched.PolicyRandom)
	res.Table.AddRow("placement", "locality-aware", fmt.Sprintf("%d", cfg.Tasks),
		fmt.Sprintf("%.0f/s", locThr), ns(locP50), ns(locP99))
	res.Table.AddRow("placement", "random", fmt.Sprintf("%d", cfg.Tasks),
		fmt.Sprintf("%.0f/s", rndThr), ns(rndP50), ns(rndP99))
	res.Ratios["random/locality dispatch p99"] = rndP99 / locP99
	res.Ratios["locality/random throughput"] = locThr / rndThr

	// ---- Phase B: node crash and failure-aware re-dispatch ----
	f := fabric.New(fabric.Config{
		GlobalSize: 64 << 20, Nodes: 2,
		CacheCapacityLines: -1, Latency: fabric.DefaultLatency(),
	})
	s := sched.New(f, sched.Config{
		Policy: sched.PolicyLocality, LocalitySlack: 1 << 40,
		ProbeRounds: 3, ReclaimTick: 100 * time.Microsecond,
		IdleTick: 100 * time.Microsecond, Seed: cfg.Seed,
	})
	defer s.Stop()
	taskNS := time.Duration(cfg.CrashTaskNS) * time.Nanosecond
	started := f.Reserve(8*2, fabric.LineSize)
	fn := s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		n.Add64(fabric.GPtr(started).Add(uint64(n.ID())*8), 1)
		time.Sleep(taskNS)
		n.Load64(fabric.GPtr(started)) // a dead CPU dies on this touch
	})
	s.Start()
	n0 := f.Node(0)
	for j := 0; j < cfg.CrashTasks; j++ {
		s.Submit(n0, sched.Task{Fn: fn, Preferred: 1})
	}
	for n0.AtomicLoad64(started.Add(8)) == 0 {
		time.Sleep(20 * time.Microsecond)
	}
	f.Node(1).Crash()
	if !s.Drain(n0) {
		panic("sched experiment: crash drain aborted")
	}
	st := s.StatsFrom(n0)
	rh := s.RedispatchHist()
	res.Table.AddRow("crash", "failure-aware", fmt.Sprintf("%d/%d done", st.Completed, cfg.CrashTasks),
		fmt.Sprintf("%d reclaimed", st.Reclaimed), ns(rh.Percentile(50)), ns(rh.Percentile(99)))
	res.Ratios["tasks surviving node crash"] = float64(st.Completed) / float64(cfg.CrashTasks)
	return res
}
