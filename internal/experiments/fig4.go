package experiments

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/ipc"
	"flacos/internal/metrics"
	"flacos/internal/netstack"
	"flacos/internal/redis"
)

// Fig4Config parameterizes the Redis latency experiment.
type Fig4Config struct {
	Requests   int
	ValueSizes []int
}

// DefaultFig4 matches the paper's setup: SET and GET at a small and a
// large request size, server and client on different nodes.
func DefaultFig4() Fig4Config {
	return Fig4Config{Requests: 2000, ValueSizes: []int{64, 4096}}
}

// Fig4 reproduces Figure 4: Redis request latency over FlacOS IPC versus
// the TCP/IP networking baseline. Each request is driven in deterministic
// lockstep (client request, server execute, client receive) and its
// latency is the request's total virtual cost across both endpoints —
// the simulation's equivalent of the client-observed round trip, free of
// host-scheduler noise.
func Fig4(cfg Fig4Config) *Result {
	res := &Result{
		Name:   "Figure 4: Redis SET/GET latency, FlacOS IPC vs TCP networking",
		Table:  metrics.NewTable("op", "value", "transport", "mean/req", "p99/req"),
		Ratios: map[string]float64{},
	}
	type cell struct{ mean, p99 float64 }
	results := map[string]cell{}

	for _, size := range cfg.ValueSizes {
		for _, transport := range []string{"tcp", "flacos-ipc"} {
			setH, getH := runRedisPair(transport, size, cfg.Requests)
			for op, h := range map[string]*metrics.Histogram{"set": setH, "get": getH} {
				s := h.Summarize()
				key := fmt.Sprintf("%s/%d/%s", op, size, transport)
				results[key] = cell{s.Mean, s.P99}
				res.Table.AddRow(op, fmt.Sprintf("%dB", size), transport, ns(s.Mean), ns(s.P99))
			}
		}
		for _, op := range []string{"set", "get"} {
			tcp := results[fmt.Sprintf("%s/%d/tcp", op, size)]
			flac := results[fmt.Sprintf("%s/%d/flacos-ipc", op, size)]
			if flac.mean > 0 {
				res.Ratios[fmt.Sprintf("tcp/flacos %s %dB", op, size)] = tcp.mean / flac.mean
			}
		}
	}
	return res
}

// runRedisPair runs requests SETs then GETs over one transport and returns
// their latency histograms (virtual ns on the client node).
func runRedisPair(transport string, valueSize, requests int) (setH, getH *metrics.Histogram) {
	f := fabric.New(fabric.Config{
		GlobalSize: 64 << 20,
		Nodes:      2,
		Latency:    fabric.DefaultLatency(),
	})
	serverNode, clientNode := f.Node(0), f.Node(1)
	store := redis.NewStore()
	srv := redis.NewServer(store)

	var cliConn, srvConn redis.Conn
	var cleanup func()

	switch transport {
	case "tcp":
		nw := netstack.New(netstack.DefaultTCP())
		l, err := nw.Listen(serverNode, "10.0.0.1:6379")
		if err != nil {
			panic(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			c, err := l.Accept()
			if err == nil {
				srvConn = c
			}
		}()
		c, err := nw.Dial(clientNode, "10.0.0.1:6379")
		if err != nil {
			panic(err)
		}
		<-done
		cliConn = c
		cleanup = func() { c.Close(); l.Close() }
	case "flacos-ipc":
		sb := ipc.NewSwitchboard(f, serverNode, ipc.Config{
			MaxConns: 2, MaxListeners: 1, RingSlots: 8, MsgMax: 64 << 10,
		})
		l, err := sb.Endpoint(serverNode).Bind("redis")
		if err != nil {
			panic(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); srvConn = l.Accept() }()
		c, err := sb.Endpoint(clientNode).Connect("redis")
		if err != nil {
			panic(err)
		}
		wg.Wait()
		cliConn = c
		cleanup = func() { c.Close(); l.Close() }
	default:
		panic("unknown transport " + transport)
	}
	defer cleanup()

	cl := redis.NewClient(cliConn, 128<<10)
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte(i)
	}
	setH, getH = metrics.NewHistogram(), metrics.NewHistogram()
	rackNS := func() uint64 { return f.RackStats().VirtualNS }
	srvBuf := make([]byte, 128<<10)
	// Lockstep request loop: the client's Send lands the request in the
	// transport; the server thread is stepped inline; the reply is then
	// ready for the client's Recv. No spin-polling ever goes unanswered,
	// so virtual costs are exact.
	step := func(issue func() error) float64 {
		before := rackNS()
		if err := issue(); err != nil {
			panic(err)
		}
		return float64(rackNS() - before)
	}
	serveOne := func() {
		n, err := srvConn.Recv(srvBuf)
		if err != nil {
			panic(err)
		}
		if err := srvConn.Send(srv.Execute(srvBuf[:n])); err != nil {
			panic(err)
		}
	}
	for i := 0; i < requests; i++ {
		key := fmt.Sprintf("key-%d", i%64)
		setH.Record(step(func() error {
			if err := cl.SendSet(key, value); err != nil {
				return err
			}
			serveOne()
			return cl.FinishSet()
		}))
	}
	for i := 0; i < requests; i++ {
		key := fmt.Sprintf("key-%d", i%64)
		getH.Record(step(func() error {
			if err := cl.SendGet(key); err != nil {
				return err
			}
			serveOne()
			_, ok, err := cl.FinishGet()
			if err == nil && !ok {
				return fmt.Errorf("get %s: missing", key)
			}
			return err
		}))
	}
	return setH, getH
}
