package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/health"
	"flacos/internal/membership"
	"flacos/internal/metrics"
	"flacos/internal/redis"
	"flacos/internal/sched"
)

// HealthConfig parameterizes the gray-failure remediation experiment.
type HealthConfig struct {
	// Nodes sizes the rack. The last node is the gray-failure victim;
	// node 0 hosts the self-healing controller and never degrades.
	Nodes int
	// RampHops is the ascending link-degradation schedule injected on the
	// victim (extra interconnect hops per home-memory access). The first
	// level should be at or above the anomaly detector's LinkHops
	// threshold so proactive mode drains at the foot of the ramp.
	RampHops []int
	// TasksPerLevel is how many closed-loop tasks each mode runs at each
	// ramp level (and in the healthy warmup) — the requests whose fabric
	// cost tail is the experiment's headline.
	TasksPerLevel int
	// Clients is the closed-loop submitter parallelism.
	Clients int
	// AtomicsPerTask is each task's fabric work: home-memory atomics that
	// pay the full (degraded) hop cost on whichever node executes them.
	AtomicsPerTask int
	// Gate is the required baseline/proactive p99 task-cost ratio under
	// degradation: proactive draining must improve the tail by at least
	// this factor or the experiment fails.
	Gate float64
}

// DefaultHealth matches the acceptance setup: a 4-node rack, a
// three-level degradation ramp on one node, and a 1.2x tail gate.
func DefaultHealth() HealthConfig {
	return HealthConfig{
		Nodes:          4,
		RampHops:       []int{4, 10, 24},
		TasksPerLevel:  240,
		Clients:        4,
		AtomicsPerTask: 96,
		Gate:           1.2,
	}
}

// Health measures the health layer (internal/health) end to end: the
// anomaly detector plus the self-healing controller against a
// liveness-only baseline, under a SetLinkDegradation ramp on one node of
// the rack.
//
// Two clocks, each used where it is honest. Task latency is VIRTUAL
// nanoseconds — each task records its executing node's deterministic
// fabric cost, so the tail comparison is reproducible and independent of
// host scheduling (a degraded node's tasks cost more because every
// home-memory atomic pays the extra hops). Remediation timings
// (degrade->drained, crash->Dead, rejoin) are WALL nanoseconds, because
// the detectors are ticker-driven: virtual time does not advance while
// an anomaly sits undetected.
//
//   - Proactive mode: membership + health agents on every node + the
//     drain -> fence -> re-place controller on node 0. The detector sees
//     the hop ramp, raises EvDegraded, and the controller gates the
//     victim out of scheduling and fences its store generation EARLY —
//     while the node is still alive. Measured: degrade->drained wall
//     latency, steady-state task cost under the ramp (the victim serves
//     nothing, so the tail stays healthy), the zombie probe (a view at
//     the drained generation must observe ErrFenced before any death),
//     recovery rejoin when the ramp clears, and a crash round (dead
//     sweep, restart, rejoin, post-death fence).
//   - Reactive baseline: membership only. Phi-accrual never declares the
//     gray node dead — it heartbeats on time, just slowly — so every
//     task placed there pays the degraded link for the whole ramp.
//
// The returned bool reports failure: the drain or rejoin never
// completing, a zombie write leaking through the early or post-death
// fence, the baseline's gray node being declared dead (which would
// invalidate the comparison), a broken exactly-once ledger, or the
// proactive tail improvement missing the gate.
func Health(cfg HealthConfig) (*Result, bool) {
	res := &Result{
		Name:   "Health: gray-failure anomaly detection and self-healing drain vs liveness-only baseline",
		Table:  metrics.NewTable("phase", "mode", "metric", "value"),
		Ratios: map[string]float64{},
	}
	var gates []string
	gatef := func(format string, args ...any) {
		gates = append(gates, fmt.Sprintf(format, args...))
	}
	victim := cfg.Nodes - 1

	// --- Proactive mode: health layer + controller. ---
	pro := newHealthRack(cfg, true)
	proHealthy := metrics.NewHistogram()
	pro.runPhase(cfg, cfg.TasksPerLevel, proHealthy)

	preGen := pro.generation(victim)
	degradeAt := time.Now()
	pro.f.Node(victim).SetLinkDegradation(cfg.RampHops[0])
	select {
	case <-pro.drained:
		res.Table.AddRow("detect", "proactive", "degrade -> drained (wall)",
			ns(float64(time.Since(degradeAt).Nanoseconds())))
	case <-time.After(memWaitTimeout):
		gatef("proactive drain never completed after the first ramp level")
	}
	// The early-fence zombie probe, BEFORE any death: the drained node is
	// alive, but a view carrying its pre-drain generation must already be
	// write-dead.
	if err := pro.store.AttachGen(pro.f.Node(victim), preGen).Set("warm", []byte("necro"), 0); !errors.Is(err, redis.ErrFenced) {
		gatef("early fence leaked: pre-drain view wrote through while the node was still alive (err=%v)", err)
	}
	res.Table.AddRow("fencing", "proactive", "zombie write while drained node still alive", "fenced")

	proDeg := metrics.NewHistogram()
	for _, hops := range cfg.RampHops {
		pro.f.Node(victim).SetLinkDegradation(hops)
		pro.runPhase(cfg, cfg.TasksPerLevel, proDeg)
	}

	// Ramp clears: the detector's hysteresis flips the verdict back and
	// the controller rejoins the victim under a bumped generation.
	recoverAt := time.Now()
	pro.f.Node(victim).SetLinkDegradation(0)
	select {
	case <-pro.rejoined:
		res.Table.AddRow("recover", "proactive", "ramp clear -> rejoined (wall)",
			ns(float64(time.Since(recoverAt).Nanoseconds())))
	case <-time.After(memWaitTimeout):
		gatef("proactive rejoin never completed after the ramp cleared")
	}
	if d, ok := pro.waitServes(victim); ok {
		res.Table.AddRow("recover", "proactive", "rejoined -> victim serving again (wall)",
			ns(float64(d.Nanoseconds())))
	} else {
		gatef("rejoined victim never served a task again")
	}

	// Crash round: dead beats degraded — the controller's death sweep
	// (gate, reclaim, post-death fence) and the crash-restart rejoin.
	if detect, complete, leak, ok := pro.crashRound(cfg, victim); ok {
		res.Table.AddRow("crash", "proactive", "crash -> Dead (wall)",
			ns(float64(detect.Nanoseconds())))
		res.Table.AddRow("crash", "proactive", "crash -> burst complete (wall)",
			ns(float64(complete.Nanoseconds())))
		if leak {
			gatef("post-death fence leaked: dead-generation view wrote through after restart")
		} else {
			res.Table.AddRow("fencing", "proactive", "zombie write after crash+restart", "fenced")
		}
	} else {
		gatef("crash round timed out (detection, completion, or restart rejoin)")
	}
	if d, ok := pro.waitServes(victim); ok {
		res.Table.AddRow("crash", "proactive", "restart rejoin -> victim serving again (wall)",
			ns(float64(d.Nanoseconds())))
	} else {
		gatef("crash-restarted victim never served a task again")
	}
	if !pro.checkExactlyOnce(res) {
		gatef("proactive mode broke exactly-once completion")
	}
	pro.stop()

	// --- Reactive baseline: membership only. ---
	rea := newHealthRack(cfg, false)
	reaHealthy := metrics.NewHistogram()
	rea.runPhase(cfg, cfg.TasksPerLevel, reaHealthy)
	reaDeg := metrics.NewHistogram()
	for _, hops := range cfg.RampHops {
		rea.f.Node(victim).SetLinkDegradation(hops)
		rea.runPhase(cfg, cfg.TasksPerLevel, reaDeg)
	}
	if rea.tb.Alive(victim) {
		res.Table.AddRow("detect", "liveness-only baseline", "gray victim declared Dead",
			"never (heartbeats keep flowing)")
	} else {
		// A dead verdict on a slow-but-beating node would mean the
		// baseline measured crash recovery, not gray failure.
		gatef("baseline declared the gray (alive, heartbeating) victim dead")
	}
	rea.f.Node(victim).SetLinkDegradation(0)
	if !rea.checkExactlyOnce(res) {
		gatef("baseline mode broke exactly-once completion")
	}
	rea.stop()

	for _, row := range []struct {
		phase, mode string
		h           *metrics.Histogram
	}{
		{"healthy", "proactive", proHealthy},
		{"healthy", "liveness-only baseline", reaHealthy},
		{"degraded", "proactive", proDeg},
		{"degraded", "liveness-only baseline", reaDeg},
	} {
		s := row.h.Summarize()
		res.Table.AddRow(row.phase, row.mode, "task fabric cost (virtual) p50/p99",
			fmt.Sprintf("%s / %s", ns(s.P50), ns(s.P99)))
	}

	proS, reaS := proDeg.Summarize(), reaDeg.Summarize()
	tailRatio, meanRatio := 0.0, 0.0
	if proS.P99 > 0 {
		tailRatio = reaS.P99 / proS.P99
	}
	if m := proDeg.Mean(); m > 0 {
		meanRatio = reaDeg.Mean() / m
	}
	res.Ratios["degraded p99 baseline/proactive"] = tailRatio
	res.Ratios["degraded mean baseline/proactive"] = meanRatio
	if tailRatio < cfg.Gate {
		gatef("proactive drain improved the degraded tail %.2fx over the baseline, want >= %.2fx", tailRatio, cfg.Gate)
	}
	for _, g := range gates {
		res.Table.AddRow("GATE", "FAIL", g, "")
	}

	res.Bench = healthBench(cfg)
	return res, len(gates) > 0
}

// healthRack is one mode's rack: accounting fabric, tuned scheduler,
// fenced store, membership on every node — plus the health layer and the
// self-healing controller in proactive mode.
type healthRack struct {
	f     *fabric.Fabric
	s     *sched.Scheduler
	store *redis.RackStore
	tb    *membership.Table
	layer *health.Layer      // proactive only
	ctl   *health.Controller // proactive only

	fn        sched.FuncID
	scratch   fabric.GPtr
	doneBase  fabric.GPtr
	cells     uint64
	taskSeq   atomic.Uint64
	started   []atomic.Uint64 // per node: tasks that began executing there
	phaseHist atomic.Pointer[metrics.Histogram]

	drained  chan struct{}
	rejoined chan struct{}

	mu       sync.Mutex // guards members/agents across rejoins
	members  []*membership.Member
	agents   []*health.Agent
	srcs     []*health.NodeSource
	deadSeen map[[2]uint64]bool // baseline dead-sweep dedup
}

func newHealthRack(cfg HealthConfig, proactive bool) *healthRack {
	r := &healthRack{
		drained:  make(chan struct{}, 4),
		rejoined: make(chan struct{}, 4),
		deadSeen: make(map[[2]uint64]bool),
	}
	r.f = fabric.New(fabric.Config{
		GlobalSize: 64 << 20,
		Nodes:      cfg.Nodes,
		// Accounting-only: the injected hops show up in every task's
		// recorded virtual cost without busy-waiting the host (which
		// would starve the heartbeat tickers on small CI machines).
		Latency: fabric.DefaultLatency(),
	})
	r.s = sched.New(r.f, sched.Config{
		TableCap:    128,
		Policy:      sched.PolicyLocality,
		ProbeRounds: 40,
		ReclaimTick: 500 * time.Microsecond,
		IdleTick:    200 * time.Microsecond,
		StealGrace:  500 * time.Microsecond,
	})
	r.scratch = r.f.Reserve(fabric.LineSize, fabric.LineSize)
	// Every task the experiment will ever submit (phases, serving probes,
	// the crash burst) gets its own DoneCell for the exactly-once audit.
	r.cells = uint64((len(cfg.RampHops)+2)*cfg.TasksPerLevel + 2*servesProbeCap + 16*cfg.Clients + 64)
	r.doneBase = r.f.Reserve(r.cells*8, fabric.LineSize)
	r.started = make([]atomic.Uint64, cfg.Nodes)
	work := cfg.AtomicsPerTask
	r.fn = r.s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		r.started[n.ID()].Add(1)
		if arg0 == 1 {
			// Crash-burst linger: stay mid-task long enough for the crash
			// to land while this node holds the lease.
			time.Sleep(200 * time.Microsecond)
		}
		v0 := n.VirtualNS()
		for i := 0; i < work; i++ {
			n.AtomicLoad64(r.scratch) // always reaches home: pays the full hop cost
		}
		if h := r.phaseHist.Load(); h != nil {
			h.Record(float64(n.VirtualNS() - v0))
		}
	})
	r.s.Start()
	r.store = redis.NewRackStore(r.f, redis.RackStoreConfig{
		ArenaBytes: 4 << 20,
		MaxViews:   64,
	})
	if err := r.store.Attach(r.f.Node(0)).Set("warm", []byte("committed"), 0); err != nil {
		panic(err)
	}
	r.tb = membership.New(r.f, membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		PhiSuspect:    3,
		PhiDead:       8,
		DeadStrikes:   3,
	})
	r.members = make([]*membership.Member, cfg.Nodes)
	r.agents = make([]*health.Agent, cfg.Nodes)
	r.srcs = make([]*health.NodeSource, cfg.Nodes)
	if proactive {
		r.layer = health.New(r.tb, health.Config{
			Tick:         100 * time.Microsecond,
			EnterStrikes: 2,
			ExitStrikes:  4,
		})
	}
	for id := 0; id < cfg.Nodes; id++ {
		if err := r.rejoinNode(id); err != nil {
			panic(err)
		}
	}
	r.s.SetLiveness(r.tb.Alive)
	if proactive {
		r.ctl = health.NewController(r.members[0], health.ControllerConfig{
			Sched:   r.s,
			Store:   r.store,
			Rejoin:  r.ctlRejoin,
			OnStage: r.onStage,
			From:    r.f.Node(0),
		})
	} else {
		// The baseline's only remediator: the classic phi-accrual Dead
		// sweep (it never fires for a gray node — that is the point).
		r.members[0].Subscribe(r.onDeadSweep)
	}
	return r
}

// rejoinNode (re)joins node id into membership and, in proactive mode,
// replaces its health agent alongside — an agent publishes records
// stamped with its member's generation, so the two always rejoin
// together.
func (r *healthRack) rejoinNode(id int) error {
	n := r.f.Node(id)
	if n.Crashed() {
		return fmt.Errorf("node %d is crashed", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if a := r.agents[id]; a != nil {
		a.Stop()
	}
	if m := r.members[id]; m != nil {
		m.Stop()
	}
	m, err := r.tb.Join(n)
	if err != nil {
		return err
	}
	if err := m.Activate(); err != nil {
		return err
	}
	m.Start()
	r.members[id] = m
	if r.layer != nil {
		if r.srcs[id] == nil {
			r.srcs[id] = health.NewNodeSource(n, r.s)
		}
		a := r.layer.Join(m, r.srcs[id])
		a.Start()
		r.agents[id] = a
	}
	return nil
}

func (r *healthRack) generation(id int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[id].Generation()
}

// ctlRejoin is the controller's recovery callback; it runs inline on the
// controller's event goroutine (node 0's health agent), so node 0 never
// self-rejoins.
func (r *healthRack) ctlRejoin(node int, gen uint64) error {
	if node == 0 {
		return fmt.Errorf("node 0 hosts the controller and does not self-rejoin")
	}
	return r.rejoinNode(node)
}

func (r *healthRack) onStage(st health.Stage, node int, gen uint64) {
	switch st {
	case health.StageDrained:
		select {
		case r.drained <- struct{}{}:
		default:
		}
	case health.StageRejoined:
		select {
		case r.rejoined <- struct{}{}:
		default:
		}
	}
}

// onDeadSweep is the baseline's Dead handler: lease reclaim plus the
// post-death fence, once per (slot, generation) — the membership
// experiment's classic sweep, without the health layer above it.
func (r *healthRack) onDeadSweep(ev membership.Event) {
	if ev.Kind != membership.EvDead {
		return
	}
	key := [2]uint64{uint64(ev.Slot), ev.Generation}
	r.mu.Lock()
	done := r.deadSeen[key]
	r.deadSeen[key] = true
	r.mu.Unlock()
	if done {
		return
	}
	n0 := r.f.Node(0)
	r.s.ReclaimNode(n0, ev.Node)
	r.store.FenceNode(n0, ev.Node, ev.Generation)
}

// submit queues one task through node 0 and returns its handle. Tasks
// cycle their preferred node over the whole rack — the victim included —
// so placement policy, not the submitter, decides who pays for the ramp.
func (r *healthRack) submit(cfg HealthConfig, arg0 uint64) sched.Handle {
	idx := r.taskSeq.Add(1) - 1
	if idx >= r.cells {
		panic("health experiment overran its DoneCell arena")
	}
	return r.s.Submit(r.f.Node(0), sched.Task{
		Fn:        r.fn,
		Arg0:      arg0,
		Arg1:      idx,
		Preferred: int(idx % uint64(cfg.Nodes)),
		DoneCell:  r.doneBase.Add(idx * 8),
	})
}

// runPhase runs count closed-loop tasks across cfg.Clients submitters;
// each task records its own fabric cost into hist from whichever node
// executed it.
func (r *healthRack) runPhase(cfg HealthConfig, count int, hist *metrics.Histogram) {
	r.phaseHist.Store(hist)
	defer r.phaseHist.Store(nil)
	per := count / cfg.Clients
	n0 := r.f.Node(0)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h := r.submit(cfg, 0)
				r.s.Wait(n0, h)
			}
		}()
	}
	wg.Wait()
}

// servesProbeCap bounds waitServes' probe submissions so the DoneCell
// arena stays sized even if the gate never reopens.
const servesProbeCap = 2000

// waitServes proves node id is pulling rack work again: it submits probe
// tasks preferred there until one actually begins executing on it.
func (r *healthRack) waitServes(id int) (time.Duration, bool) {
	start := time.Now()
	s0 := r.started[id].Load()
	n0 := r.f.Node(0)
	for i := 0; i < servesProbeCap; i++ {
		if time.Since(start) > memWaitTimeout {
			return 0, false
		}
		idx := r.taskSeq.Add(1) - 1
		if idx >= r.cells {
			return 0, false
		}
		h := r.s.Submit(n0, sched.Task{
			Fn:        r.fn,
			Arg1:      idx,
			Preferred: id,
			DoneCell:  r.doneBase.Add(idx * 8),
		})
		r.s.Wait(n0, h)
		if r.started[id].Load() > s0 {
			return time.Since(start), true
		}
	}
	return 0, false
}

// crashRound crashes the victim mid-task under load and returns
// (crash->Dead, crash->burst complete, post-restart zombie leak, ok).
// The controller's death sweep owns remediation; afterwards the node is
// restarted, rebooted in sched, and rejoined under a fresh generation.
func (r *healthRack) crashRound(cfg HealthConfig, victim int) (detect, complete time.Duration, leak, ok bool) {
	deadline := time.Now().Add(memWaitTimeout)
	for !r.tb.Alive(victim) {
		if time.Now().After(deadline) {
			return 0, 0, false, false
		}
		time.Sleep(50 * time.Microsecond)
	}
	deadGen := r.generation(victim)

	s0 := r.started[victim].Load()
	hs := make([]sched.Handle, 0, 16*cfg.Clients)
	for i := 0; i < 16*cfg.Clients; i++ {
		hs = append(hs, r.submit(cfg, 1)) // lingering tasks: the crash lands mid-task
	}
	deadline = time.Now().Add(memWaitTimeout)
	for r.started[victim].Load() == s0 {
		if time.Now().After(deadline) {
			return 0, 0, false, false
		}
		time.Sleep(10 * time.Microsecond)
	}
	crashAt := time.Now()
	r.f.Node(victim).Crash()

	deadline = time.Now().Add(memWaitTimeout)
	for r.tb.Alive(victim) {
		if time.Now().After(deadline) {
			return 0, 0, false, false
		}
		time.Sleep(20 * time.Microsecond)
	}
	detect = time.Since(crashAt)
	n0 := r.f.Node(0)
	for _, h := range hs {
		r.s.Wait(n0, h)
	}
	complete = time.Since(crashAt)

	r.f.Node(victim).Restart()
	r.s.RebootNode(victim)
	if err := r.rejoinNode(victim); err != nil {
		return 0, 0, false, false
	}
	// The controller's death sweep runs on its own event path (it needs
	// its observer's Dead strikes, not just the table's verdict), so the
	// fence may rise an instant after the burst completes: poll. A leak
	// is a dead-generation write still going through once the sweep has
	// had memWaitTimeout to fire.
	view := r.store.AttachGen(r.f.Node(victim), deadGen)
	deadline = time.Now().Add(memWaitTimeout)
	leak = true
	for time.Now().Before(deadline) {
		if errors.Is(view.Set("warm", []byte("necro"), 0), redis.ErrFenced) {
			leak = false
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	return detect, complete, leak, true
}

// checkExactlyOnce audits the mode's entire task history after all
// phases: the scheduler ledger balances and every DoneCell holds exactly
// 1 despite the drain's re-placement and the crash round's re-dispatch.
func (r *healthRack) checkExactlyOnce(res *Result) bool {
	n0 := r.f.Node(0)
	r.s.Drain(n0)
	st := r.s.StatsFrom(n0)
	total := r.taskSeq.Load()
	bad := 0
	for i := uint64(0); i < total; i++ {
		if n0.AtomicLoad64(r.doneBase+fabric.GPtr(i*8)) != 1 {
			bad++
		}
	}
	mode := "liveness-only baseline"
	if r.layer != nil {
		mode = "proactive"
	}
	res.Table.AddRow("invariant", mode, "tasks exactly-once",
		fmt.Sprintf("%d / %d (submitted %d, completed %d, queued %d)",
			total-uint64(bad), total,
			st.Submitted, st.Completed, st.Queued))
	return bad == 0 && st.Submitted == st.Completed && st.Queued == 0
}

func (r *healthRack) stop() {
	r.mu.Lock()
	agents, members := r.agents, r.members
	r.mu.Unlock()
	for _, a := range agents {
		if a != nil {
			a.Stop()
		}
	}
	for _, m := range members {
		if m != nil {
			m.Stop()
		}
	}
	r.s.Stop()
}

// healthBench computes the experiment's machine-readable headline on a
// separate accounting-only fabric, so BENCH_health.json is bit-identical
// across runs, hosts, and -quick vs full sizes (wall numbers would churn
// the tracked artifact on every CI machine): the VIRTUAL per-op cost a
// task pays on a healthy link (p50, and the throughput it implies)
// versus at the worst ramp level (p99) — the latency cliff the drain
// removes from the tail.
func healthBench(cfg HealthConfig) *Bench {
	f := fabric.New(fabric.Config{
		GlobalSize: 1 << 20,
		Nodes:      2,
		Latency:    fabric.DefaultLatency(), // LatencyAccount: exact, no wall time
	})
	n := f.Node(1)
	g := f.Reserve(fabric.LineSize, fabric.LineSize)
	perOp := func(hops int) float64 {
		n.SetLinkDegradation(hops)
		const probes = 256
		before := n.Stats().VirtualNS
		for i := 0; i < probes; i++ {
			n.AtomicLoad64(g)
		}
		return float64(n.Stats().VirtualNS-before) / probes
	}
	base := perOp(0)
	worst := base
	for _, hops := range cfg.RampHops {
		if c := perOp(hops); c > worst {
			worst = c
		}
	}
	return &Bench{
		Name:      "health",
		OpsPerSec: 1e9 / base,
		P50NS:     base,
		P99NS:     worst,
	}
}
