package experiments

import (
	"fmt"
	"math"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/metrics"
)

// FabricConfig parameterizes the fabric fast-path micro-benchmark.
type FabricConfig struct {
	// HitReps / MissReps / AtomicReps size the wall-clock measurement
	// loops for the scalar ops. The VIRTUAL cost rows never depend on
	// them: each is taken from a single op's deterministic charge, so the
	// committed artifact is identical under -quick and full runs.
	HitReps, MissReps, AtomicReps int
	// RangedReps is the wall-measurement loop count per ranged size.
	RangedReps int
	// RangeSizes are the ranged write-back/invalidate sizes in lines.
	RangeSizes []int
	// SpeedupGate is the required wall-ns/op improvement of one ranged
	// write-back over the pinned per-line baseline at 16 lines, with the
	// common dirtying-store cost subtracted from both sides.
	SpeedupGate float64
	// GateHookDispatch, when set, additionally requires a hooked fence to
	// cost more wall time than a no-hook fence — hook dispatch is a
	// double-digit fraction of a fence's wall cost, so it is the one op
	// where the overhead the hooked flag keeps off the common case
	// separates cleanly from clock noise. The miss path's saving is
	// reported alongside but too small a fraction of a miss to gate on.
	// Off under -quick where the loops are too short even for the fence.
	GateHookDispatch bool
}

// DefaultFabric sizes the measurement loops so per-op wall numbers come
// from tens of thousands of samples.
func DefaultFabric() FabricConfig {
	return FabricConfig{
		HitReps:        200_000,
		MissReps:       50_000,
		AtomicReps:     100_000,
		RangedReps:     5_000,
		RangeSizes:       []int{1, 4, 16, 64},
		SpeedupGate:      1.5,
		GateHookDispatch: true,
	}
}

// fabricGateLines is the ranged size the speedup gate is evaluated at.
const fabricGateLines = 16

// Fabric measures the memory fabric's per-op costs and gates the ranged
// fast path, returning (result, failed):
//
//   - a virtual-ns cost row per op kind (read/write hit, read miss,
//     ranged write-back and invalidate at 1/4/16/64 lines, atomic RMW,
//     fence), each taken from a single op's deterministic charge — these
//     are the rows committed to BENCH_fabric.json and must be bit-stable;
//   - a wall-ns/op column for the same ops from host-clock measurement
//     loops (reported in the table, never committed);
//   - gate: the ranged write-back's modeled virtual charge must equal the
//     pinned per-line baseline's EXACTLY at every size (batching is a
//     wall-cost optimization, not a model change);
//   - gate: at 16 lines the ranged call must beat the per-line baseline
//     by SpeedupGate in wall ns/op once the common dirtying stores are
//     subtracted;
//   - gate (full runs): a fence with an op hook installed must cost more
//     wall time than the no-hook fence — the dispatch cost the per-node
//     hooked flag keeps off the common path, measured on the op where it
//     is the largest fraction. The miss path's no-hook saving is reported
//     alongside.
func Fabric(cfg FabricConfig) (*Result, bool) {
	res := &Result{
		Name:   "Fabric fast path: per-op costs and ranged batching",
		Table:  metrics.NewTable("op", "virtual", "wall", "notes"),
		Ratios: map[string]float64{},
	}
	failed := false

	newRack := func() (*fabric.Fabric, *fabric.Node, fabric.GPtr) {
		f := fabric.New(fabric.Config{
			GlobalSize:         64 << 20,
			Nodes:              1,
			CacheCapacityLines: -1,
			Latency:            fabric.DefaultLatency(),
		})
		return f, f.Node(0), f.Reserve(1<<20, fabric.LineSize)
	}

	// ---- Virtual cost rows: one op each, charged deterministically ----
	f, n, g := newRack()
	vcost := func(prep, op func()) float64 {
		prep()
		v0 := n.VirtualNS()
		op()
		return float64(n.VirtualNS() - v0)
	}
	line := func(l int) fabric.GPtr { return g.Add(uint64(l) * fabric.LineSize) }
	dirty := func(lines int) {
		for l := 0; l < lines; l++ {
			n.Store64(line(l), uint64(l)+1)
		}
	}
	resident := func(lines int) {
		for l := 0; l < lines; l++ {
			n.Load64(line(l))
		}
	}

	vReadHit := vcost(func() { n.Load64(g) }, func() { n.Load64(g) })
	vWriteHit := vcost(func() { n.Load64(g) }, func() { n.Store64(g, 1) })
	vReadMiss := vcost(func() { n.InvalidateRange(g, 8) }, func() { n.Load64(g) })
	vAtomic := vcost(func() {}, func() { n.Add64(g, 1) })
	vFence := vcost(func() {}, func() { n.Fence() })
	vWBR := map[int]float64{}
	vINV := map[int]float64{}
	for _, lines := range cfg.RangeSizes {
		sz := uint64(lines) * fabric.LineSize
		vWBR[lines] = vcost(func() { dirty(lines) }, func() { n.WriteBackRange(g, sz) })
		vINV[lines] = vcost(func() { resident(lines) }, func() { n.InvalidateRange(g, sz) })

		// Gate: the per-line baseline charges the same virtual cost.
		dirty(lines)
		v0 := n.VirtualNS()
		n.WriteBackRangePerLine(g, sz)
		if legacy := float64(n.VirtualNS() - v0); legacy != vWBR[lines] {
			res.Table.AddRow(fmt.Sprintf("wbr-%d", lines), "DIVERGED", "",
				fmt.Sprintf("ranged charges %v ns, per-line %v ns", vWBR[lines], legacy))
			failed = true
		}
	}

	// ---- Wall cost loops ----
	wallOnce := func(reps int, fn func(i int)) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn(i)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(reps)
	}
	wall := func(reps int, fn func(i int)) float64 {
		best := 0.0
		for attempt := 0; attempt < 3; attempt++ { // best-of-3 damps scheduler noise
			if d := wallOnce(reps, fn); best == 0 || d < best {
				best = d
			}
		}
		return best
	}

	n.Load64(g)
	wReadHit := wall(cfg.HitReps, func(i int) { n.Load64(g) })
	wWriteHit := wall(cfg.HitReps, func(i int) { n.Store64(g, uint64(i)) })
	wMissPair := wall(cfg.MissReps, func(i int) { n.InvalidateRange(g, 8); n.Load64(g) })
	wAtomic := wall(cfg.AtomicReps, func(i int) { n.Add64(g, 1) })
	wFence := wall(cfg.AtomicReps, func(i int) { n.Fence() })

	wWBR := map[int]float64{}
	wINV := map[int]float64{}
	wDirty := map[int]float64{}
	for _, lines := range cfg.RangeSizes {
		sz := uint64(lines) * fabric.LineSize
		wDirty[lines] = wall(cfg.RangedReps, func(i int) { dirty(lines) })
		// Floor at 1 ns: the subtraction can only go non-positive through
		// clock noise, and the gate below divides by this.
		wWBR[lines] = math.Max(1,
			wall(cfg.RangedReps, func(i int) { dirty(lines); n.WriteBackRange(g, sz) })-wDirty[lines])
		wINV[lines] = wall(cfg.RangedReps, func(i int) { resident(lines); n.InvalidateRange(g, sz) })
	}

	// ---- Gate: ranged vs per-line wall speedup at 16 lines ----
	// The three loops (dirtying stores alone, dirty+ranged, dirty+legacy)
	// interleave round-robin and each keeps its fastest round, so a noisy
	// neighbor or a frequency shift hits all three alike instead of
	// skewing whichever loop it landed on. A ratio below the gate earns
	// two full re-measurements before the run fails: the true separation
	// sits well above the gate, so only a genuine regression fails all
	// three attempts.
	gl := fabricGateLines
	gsz := uint64(gl) * fabric.LineSize
	var wLegacy float64
	measureSpeedup := func() float64 {
		var dMin, rMin, lMin float64
		keep := func(cur, d float64) float64 {
			if cur == 0 || d < cur {
				return d
			}
			return cur
		}
		for round := 0; round < 6; round++ {
			dMin = keep(dMin, wallOnce(cfg.RangedReps, func(i int) { dirty(gl) }))
			rMin = keep(rMin, wallOnce(cfg.RangedReps, func(i int) { dirty(gl); n.WriteBackRange(g, gsz) }))
			lMin = keep(lMin, wallOnce(cfg.RangedReps, func(i int) { dirty(gl); n.WriteBackRangePerLine(g, gsz) }))
		}
		wLegacy = math.Max(1, lMin-dMin)
		return wLegacy / math.Max(1, rMin-dMin)
	}
	speedup := measureSpeedup()
	for attempt := 0; attempt < 2 && speedup < cfg.SpeedupGate; attempt++ {
		if s := measureSpeedup(); s > speedup {
			speedup = s
		}
	}
	res.Ratios[fmt.Sprintf("wbr-%d ranged vs per-line (wall)", gl)] = speedup
	if speedup < cfg.SpeedupGate {
		failed = true
	}

	// ---- No-hook vs hooked event paths ----
	// A fresh rack so the counting hook never sees the loops above. The
	// no-hook and hooked loops alternate (hook removed and reinstalled
	// each round) so cache warmth and frequency scaling hit both equally;
	// each side keeps its best round.
	fh, nh, gh := newRack()
	_ = fh
	var hookHits uint64
	countHook := func(k fabric.OpKind, arg0, arg1 uint64) { hookHits++ }
	missPair := func(i int) { nh.InvalidateRange(gh, 8); nh.Load64(gh) }
	fenceOp := func(i int) { nh.Fence() }
	alternate := func(reps int, fn func(int)) (noHook, hooked float64) {
		for i := 0; i < reps/4; i++ { // warm up before either side is timed
			fn(i)
		}
		best := func(cur, d float64) float64 {
			if cur == 0 || d < cur {
				return d
			}
			return cur
		}
		for round := 0; round < 4; round++ {
			nh.SetOpHook(nil)
			start := time.Now()
			for i := 0; i < reps; i++ {
				fn(i)
			}
			noHook = best(noHook, float64(time.Since(start).Nanoseconds())/float64(reps))
			nh.SetOpHook(countHook)
			start = time.Now()
			for i := 0; i < reps; i++ {
				fn(i)
			}
			hooked = best(hooked, float64(time.Since(start).Nanoseconds())/float64(reps))
		}
		nh.SetOpHook(nil)
		return noHook, hooked
	}
	wMissNoHook, wMissHooked := alternate(cfg.MissReps, missPair)
	wFenceNoHook, wFenceHooked := alternate(cfg.AtomicReps, fenceOp)
	for attempt := 0; attempt < 2 && cfg.GateHookDispatch && wFenceHooked <= wFenceNoHook; attempt++ {
		wFenceNoHook, wFenceHooked = alternate(cfg.AtomicReps, fenceOp) // re-measure before failing
	}
	res.Ratios["miss hooked vs no-hook (wall)"] = wMissHooked / wMissNoHook
	res.Ratios["fence hooked vs no-hook (wall)"] = wFenceHooked / wFenceNoHook
	if cfg.GateHookDispatch && !(wFenceHooked > wFenceNoHook) {
		failed = true
	}

	// ---- Table and bench artifact ----
	row := func(op string, v, w float64, notes string) {
		res.Table.AddRow(op, ns(v), ns(w), notes)
	}
	row("read-hit", vReadHit, wReadHit, "warm line, local")
	row("write-hit", vWriteHit, wWriteHit, "dirty warm line in place")
	row("read-miss", vReadMiss, wMissPair, "wall includes the invalidate that forces the miss")
	for _, lines := range cfg.RangeSizes {
		row(fmt.Sprintf("wbr-%d", lines), vWBR[lines], wWBR[lines],
			"one ranged call; dirtying stores subtracted from wall")
		row(fmt.Sprintf("inv-%d", lines), vINV[lines], wINV[lines],
			"wall includes the re-fetch misses that re-populate the lines")
	}
	row("atomic-rmw", vAtomic, wAtomic, "fabric Add64, bypasses cache")
	row("fence", vFence, wFence, "")
	res.Table.AddRow("wbr-16-per-line", "", ns(wLegacy), "pinned legacy baseline for the speedup gate")
	res.Table.AddRow("miss-no-hook", "", ns(wMissNoHook), "hooked flag short-circuits event assembly")
	res.Table.AddRow("miss-hooked", "", ns(wMissHooked), "counting hook installed")
	res.Table.AddRow("fence-no-hook", "", ns(wFenceNoHook), "the hook-dispatch gate runs here")
	res.Table.AddRow("fence-hooked", "", ns(wFenceHooked),
		fmt.Sprintf("counting hook installed; %d events dispatched in total", hookHits))

	ops := []OpCost{
		{Op: "read-hit", VirtualNS: vReadHit},
		{Op: "write-hit", VirtualNS: vWriteHit},
		{Op: "read-miss", VirtualNS: vReadMiss},
	}
	for _, lines := range cfg.RangeSizes {
		ops = append(ops,
			OpCost{Op: fmt.Sprintf("wbr-%d", lines), VirtualNS: vWBR[lines]},
			OpCost{Op: fmt.Sprintf("inv-%d", lines), VirtualNS: vINV[lines]})
	}
	ops = append(ops,
		OpCost{Op: "atomic-rmw", VirtualNS: vAtomic},
		OpCost{Op: "fence", VirtualNS: vFence})

	maxLines := cfg.RangeSizes[len(cfg.RangeSizes)-1]
	res.Bench = &Bench{
		Name:      "fabric",
		OpsPerSec: 1e9 / vReadHit,
		P50NS:     vReadHit,
		P99NS:     vWBR[maxLines],
		Ops:       ops,
	}
	_ = f
	return res, failed
}
