package experiments

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/ipc"
	"flacos/internal/metrics"
	"flacos/internal/redis"
)

// RedisRackConfig parameterizes the rack-shared Redis serving ablation.
type RedisRackConfig struct {
	// ServeNodes run Redis servers over views of ONE shared store.
	ServeNodes int
	// ClientNodes host the client workers (separate from the serving
	// nodes so client-side virtual cost is identical across modes).
	ClientNodes int
	// Clients is the number of concurrent client goroutines (each with
	// its own connection and key range).
	Clients int
	// Batches is rounds per client per throughput phase.
	Batches int
	// BatchSize is commands pipelined per round trip.
	BatchSize int
	// ValueBytes sizes SET payloads.
	ValueBytes int
	// KeysPerClient is each client's private key-range size.
	KeysPerClient int
	// LatencyOps is rounds per latency configuration.
	LatencyOps int
}

// DefaultRedisRack matches the acceptance setup: 2 serving nodes, 4
// client goroutines on 2 client nodes, pipelined batches.
func DefaultRedisRack() RedisRackConfig {
	return RedisRackConfig{
		ServeNodes:    2,
		ClientNodes:   2,
		Clients:       4,
		Batches:       300,
		BatchSize:     16,
		ValueBytes:    128,
		KeysPerClient: 64,
		LatencyOps:    200,
	}
}

// RedisRack measures the rack-shared Redis store serving ONE dataset from
// every node (the paper's Fig. 4 workload on the shared-OS substrate):
//
//   - Latency: per-op round-trip cost serial vs pipelined (the batch
//     amortization the tentpole adds to client and server).
//   - Throughput: the same client fleet driving 1 serving node vs all
//     serving nodes. The store is in the global arena, so adding server
//     nodes divides the serving work without any replication or routing
//     by key — the makespan (max per-node virtual time) drops.
//   - Integrity: a hot key written by one client through node 0 and read
//     by the others through other nodes; every observed GET must be
//     fresh (not older than the last flush-acknowledged write), intact
//     (never torn) and monotone (never going backwards). Private keys
//     are single-writer and every GET must return exactly the last
//     acknowledged SET.
//
// The returned bool reports failure: any stale/torn/backwards/mismatched
// read, or a multi-node speedup below the 1.5x acceptance gate.
func RedisRack(cfg RedisRackConfig) (*Result, bool) {
	res := &Result{
		Name:   "Rack-shared Redis: one arena-resident dataset served from every node",
		Table:  metrics.NewTable("phase", "config", "metric", "value"),
		Ratios: map[string]float64{},
	}

	rack := core.Boot(core.Config{
		Nodes: cfg.ServeNodes + cfg.ClientNodes,
		IPC:   ipcSized(cfg),
	})
	defer rack.Shutdown()

	// Phase 1: lockstep latency, serial vs pipelined.
	serialH := redisRackLatency(rack, cfg, 1)
	pipeH := redisRackLatency(rack, cfg, cfg.BatchSize)
	for _, row := range []struct {
		name string
		h    *metrics.Histogram
	}{{"batch=1", serialH}, {fmt.Sprintf("batch=%d", cfg.BatchSize), pipeH}} {
		s := row.h.Summarize()
		res.Table.AddRow("latency", row.name, "per-op mean/p50/p99",
			fmt.Sprintf("%s / %s / %s", ns(s.Mean), ns(s.P50), ns(s.P99)))
	}
	if m := pipeH.Mean(); m > 0 {
		res.Ratios["serial/pipelined per-op latency"] = serialH.Mean() / m
	}

	// Phases 2+3: throughput and integrity, 1 vs N serving nodes.
	single := redisRackServe(rack, cfg, 1)
	multi := redisRackServe(rack, cfg, cfg.ServeNodes)
	for _, m := range []*serveOutcome{single, multi} {
		res.Table.AddRow("throughput", fmt.Sprintf("%d server node(s)", m.serveNodes),
			"ops/s (virtual)", fmt.Sprintf("%.0f", m.opsPerSec))
		res.Table.AddRow("throughput", fmt.Sprintf("%d server node(s)", m.serveNodes),
			"makespan", ns(float64(m.makespanNS)))
		res.Table.AddRow("integrity", fmt.Sprintf("%d server node(s)", m.serveNodes),
			"stale/torn/backwards/mismatch",
			fmt.Sprintf("%d / %d / %d / %d", m.stale, m.torn, m.backwards, m.mismatch))
	}
	ratio := 0.0
	if single.opsPerSec > 0 {
		ratio = multi.opsPerSec / single.opsPerSec
	}
	res.Ratios["multi/single node throughput"] = ratio

	ps := pipeH.Summarize()
	res.Bench = &Bench{
		Name:      "redisrack",
		OpsPerSec: multi.opsPerSec,
		P50NS:     ps.P50,
		P99NS:     ps.P99,
	}

	failed := ratio < 1.5 ||
		single.violations() > 0 || multi.violations() > 0
	return res, failed
}

// ipcSized sizes the switchboard so a whole pipelined batch fits one IPC
// message with room for RESP overhead, with connection slots for both
// throughput modes plus the latency session.
func ipcSized(cfg RedisRackConfig) ipc.Config {
	return ipc.Config{
		MsgMax:       uint64(cfg.BatchSize*(cfg.ValueBytes+96) + 4096),
		MaxConns:     2*cfg.Clients + 4,
		MaxListeners: 2*cfg.Clients + 4,
	}
}

// redisRackLatency runs one lockstep client against one server session on
// node 0 and returns the per-op virtual latency histogram at the given
// pipeline depth (each sample is one round trip's rack cost divided by
// the batch size).
func redisRackLatency(rack *core.Rack, cfg RedisRackConfig, batch int) *metrics.Histogram {
	f := rack.Fabric
	sess, cl, closeAll := redisRackConnect(rack, cfg, "lat", 0, cfg.ServeNodes)
	defer closeAll()

	h := metrics.NewHistogram()
	value := patternValue(0, "warm", 1, cfg.ValueBytes)
	rackNS := func() uint64 { return f.RackStats().VirtualNS }
	for op := 0; op < cfg.LatencyOps; op++ {
		before := rackNS()
		for r := 0; r < batch; r++ {
			key := fmt.Sprintf("lat-%d", (op*batch+r)%cfg.KeysPerClient)
			if (op+r)%2 == 0 {
				cl.PipeSet(key, value, 0)
			} else {
				cl.PipeGet(key)
			}
		}
		n, err := cl.FlushSend()
		if err != nil {
			panic(err)
		}
		sess.serveOne()
		if _, err := cl.FlushRecv(n); err != nil {
			panic(err)
		}
		h.Record(float64(rackNS()-before) / float64(batch))
	}
	return h
}

// serveOutcome is one throughput phase's measurements.
type serveOutcome struct {
	serveNodes int
	opsPerSec  float64
	makespanNS uint64
	stale      int
	torn       int
	backwards  int
	mismatch   int
}

func (o *serveOutcome) violations() int { return o.stale + o.torn + o.backwards + o.mismatch }

// session is one server-side connection: a Server over its own view of
// the shared store, executing one pipelined batch per round.
type session struct {
	srv  *redis.Server
	view *redis.View
	conn redis.Conn
	buf  []byte
	out  []byte
}

func (s *session) serveOne() {
	n, err := s.conn.Recv(s.buf)
	if err != nil {
		panic(err)
	}
	s.out = s.srv.ExecuteBatch(s.out[:0], s.buf[:n])
	if err := s.conn.Send(s.out); err != nil {
		panic(err)
	}
}

// redisRackConnect establishes one client connection to serving node
// srvIdx (listener name unique per mode+client) plus its server session.
func redisRackConnect(rack *core.Rack, cfg RedisRackConfig, mode string, j, clientNode int) (*session, *redis.Client, func()) {
	srvIdx := j % maxInt(1, cfg.ServeNodes)
	name := fmt.Sprintf("redis-%s-%d", mode, j)
	l, err := rack.OS(srvIdx).Endpoint.Bind(name)
	if err != nil {
		panic(err)
	}
	var sconn redis.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); sconn = l.Accept() }()
	cconn, err := rack.OS(clientNode).Endpoint.Connect(name)
	if err != nil {
		panic(err)
	}
	wg.Wait()
	view := rack.OS(srvIdx).RedisView()
	sess := &session{
		srv:  redis.NewServer(view),
		view: view,
		conn: sconn,
		buf:  make([]byte, 256<<10),
	}
	cl := redis.NewClient(cconn, 256<<10)
	return sess, cl, func() { cconn.Close(); l.Close() }
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// patternValue builds a self-checking payload: 8 bytes of sequence
// followed by bytes derived from (seq, key, salt). A torn read — any mix
// of two payloads — fails the byte check.
func patternValue(seq uint64, key string, salt byte, size int) []byte {
	if size < 9 {
		size = 9
	}
	v := make([]byte, size)
	binary.LittleEndian.PutUint64(v, seq)
	for i := 8; i < size; i++ {
		v[i] = byte(uint64(i)+seq) ^ byte(len(key)) ^ salt
	}
	return v
}

// checkPattern validates a payload against patternValue's construction,
// returning the sequence it carries and whether every byte is consistent
// with it.
func checkPattern(v []byte, key string, salt byte) (seq uint64, intact bool) {
	if len(v) < 9 {
		return 0, false
	}
	seq = binary.LittleEndian.Uint64(v)
	for i := 8; i < len(v); i++ {
		if v[i] != byte(uint64(i)+seq)^byte(len(key))^salt {
			return seq, false
		}
	}
	return seq, true
}

// redisRackServe runs the full client fleet against serveNodes servers in
// barriered rounds (queue+send, serve, receive+check): no connection ever
// spin-waits, so per-node virtual time is pure work and the phase
// makespan — the maximum per-node virtual time — is an honest serving-
// capacity measure.
func redisRackServe(rack *core.Rack, cfg RedisRackConfig, serveNodes int) *serveOutcome {
	f := rack.Fabric
	mode := fmt.Sprintf("serve%d", serveNodes)
	hotKey := "hot-" + mode

	type clientState struct {
		cl       *redis.Client
		sess     *session
		lastVal  map[string][]byte
		setCount map[string]uint64
		expect   []func(v redis.Value) // reply checkers, queue order
		pending  int

		hotSeq     uint64 // writer: last queued hot sequence
		floorAtTx  uint64 // reader: floor loaded before FlushSend
		lastHotSeq uint64 // reader: monotonicity floor
	}

	var floor atomic.Uint64 // hot sequences acknowledged to the writer
	out := &serveOutcome{serveNodes: serveNodes}
	var viol struct {
		sync.Mutex
		stale, torn, backwards, mismatch int
	}

	clients := make([]*clientState, cfg.Clients)
	closers := make([]func(), 0, cfg.Clients)
	for j := range clients {
		clientNode := cfg.ServeNodes + j%maxInt(1, cfg.ClientNodes)
		scfg := cfg
		scfg.ServeNodes = serveNodes
		sess, cl, cl0 := redisRackConnect(rack, scfg, mode, j, clientNode)
		closers = append(closers, cl0)
		clients[j] = &clientState{
			cl:       cl,
			sess:     sess,
			lastVal:  map[string][]byte{},
			setCount: map[string]uint64{},
		}
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	// Per-round client steps. Queue/check run in parallel across clients;
	// rounds are barriered so a flush-acknowledged write is fully applied
	// before any later round's reads are served.
	queue := func(j int, c *clientState, b int) {
		c.expect = c.expect[:0]
		for r := 0; r < cfg.BatchSize; r++ {
			if j == 0 && r == cfg.BatchSize-1 {
				// The hot writer: one hot SET per round, last in the batch.
				c.hotSeq++
				c.cl.PipeSet(hotKey, patternValue(c.hotSeq, hotKey, 7, cfg.ValueBytes), 0)
				c.expect = append(c.expect, expectOK(&viol.Mutex, &viol.mismatch))
				continue
			}
			if j != 0 && r == 0 {
				// Hot readers: one hot GET per round, first in the batch,
				// with the freshness floor loaded before transmission.
				c.floorAtTx = floor.Load()
				c.cl.PipeGet(hotKey)
				fl, last := c.floorAtTx, c.lastHotSeq
				c.expect = append(c.expect, func(v redis.Value) {
					var seq uint64
					intact := false
					if v.Bulk != nil {
						seq, intact = checkPattern(v.Bulk, hotKey, 7)
					}
					viol.Lock()
					switch {
					case v.Bulk == nil:
						if fl > 0 {
							viol.stale++ // an acknowledged write vanished
						}
					case !intact:
						viol.torn++
					case seq < fl:
						viol.stale++
					case seq < last:
						viol.backwards++
					}
					viol.Unlock()
					if seq > c.lastHotSeq {
						c.lastHotSeq = seq
					}
				})
				continue
			}
			// Private single-writer keys: every GET must return exactly the
			// last SET this client flushed or queued earlier in this batch.
			opIdx := b*cfg.BatchSize + r
			key := fmt.Sprintf("k-%s-%d-%d", mode, j, opIdx%cfg.KeysPerClient)
			if c.setCount[key] == 0 || opIdx%2 == 0 {
				c.setCount[key]++
				val := patternValue(c.setCount[key], key, byte(j), cfg.ValueBytes)
				c.cl.PipeSet(key, val, 0)
				c.lastVal[key] = val
				c.expect = append(c.expect, expectOK(&viol.Mutex, &viol.mismatch))
			} else {
				want := c.lastVal[key]
				c.cl.PipeGet(key)
				c.expect = append(c.expect, func(v redis.Value) {
					if v.Bulk == nil || !bytes.Equal(v.Bulk, want) {
						viol.Lock()
						viol.mismatch++
						viol.Unlock()
					}
				})
			}
		}
		n, err := c.cl.FlushSend()
		if err != nil {
			panic(err)
		}
		c.pending = n
	}
	check := func(j int, c *clientState) {
		replies, err := c.cl.FlushRecv(c.pending)
		if err != nil {
			panic(err)
		}
		for i, v := range replies {
			c.expect[i](v)
		}
		if j == 0 {
			floor.Store(c.hotSeq) // round barrier: the whole batch is applied
		}
	}

	before := make([]fabric.NodeStatsSnapshot, rack.Nodes())
	for i := range before {
		before[i] = f.Node(i).Stats()
	}
	parallel := func(fn func(j int)) {
		var wg sync.WaitGroup
		for j := range clients {
			wg.Add(1)
			go func(j int) { defer wg.Done(); fn(j) }(j)
		}
		wg.Wait()
	}
	for b := 0; b < cfg.Batches; b++ {
		parallel(func(j int) { queue(j, clients[j], b) })
		parallel(func(j int) { clients[j].sess.serveOne() })
		parallel(func(j int) { check(j, clients[j]) })
	}
	for i := range before {
		d := f.Node(i).Stats().Delta(before[i])
		if d.VirtualNS > out.makespanNS {
			out.makespanNS = d.VirtualNS
		}
	}

	totalOps := cfg.Clients * cfg.Batches * cfg.BatchSize
	if out.makespanNS > 0 {
		out.opsPerSec = float64(totalOps) / (float64(out.makespanNS) / 1e9)
	}
	out.stale = viol.stale
	out.torn = viol.torn
	out.backwards = viol.backwards
	out.mismatch = viol.mismatch
	for _, c := range clients {
		c.sess.view.Barrier() // reclaim this phase's replaced blocks
	}
	return out
}

// expectOK returns a checker that counts any non-OK SET reply as a
// mismatch.
func expectOK(mu *sync.Mutex, counter *int) func(v redis.Value) {
	return func(v redis.Value) {
		if v.IsError() || v.Str != "OK" {
			mu.Lock()
			*counter++
			mu.Unlock()
		}
	}
}
