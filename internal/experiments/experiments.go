// Package experiments reproduces the paper's evaluation (§4.2) and the
// ablations behind its design claims (§3). Each experiment builds its own
// simulated rack, runs the workload, and reports results in VIRTUAL time —
// the fabric's deterministic cost accounting — so runs are reproducible
// and independent of host scheduling. cmd/flacbench prints the tables; the
// repo-root benchmarks wrap the same functions.
package experiments

import (
	"fmt"
	"math"

	"flacos/internal/loadgen"
	"flacos/internal/metrics"
)

// Result is one experiment's rendered output plus raw series for
// programmatic checks (tests assert on the shapes the paper claims).
type Result struct {
	Name  string
	Table *metrics.Table
	// Ratios holds the experiment's headline comparisons, e.g.
	// "tcp/ipc set 64B" -> 2.1.
	Ratios map[string]float64
	// Bench, when set, is the experiment's machine-readable headline for
	// cross-PR tracking (flacbench -bench-json writes it to
	// BENCH_<name>.json).
	Bench *Bench
}

// Bench is one experiment's headline numbers in machine-readable form.
// Times are virtual nanoseconds; throughput is ops per virtual second.
type Bench struct {
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50NS     float64 `json:"p50_ns"`
	P99NS     float64 `json:"p99_ns"`
	// Rows, when set, holds a sweep's full per-configuration series (the
	// redisscale scaling curve: one row per node count and offered load).
	Rows []loadgen.Row `json:"rows,omitempty"`
	// Ops, when set, holds per-operation cost rows (the fabric
	// micro-benchmark: one row per op kind). VirtualNS comes from the
	// deterministic cost model and is bit-stable across runs and hosts;
	// WallNS is host-dependent and omitted from committed artifacts.
	Ops []OpCost `json:"ops,omitempty"`
}

// OpCost is one operation's cost row inside a Bench.
type OpCost struct {
	Op        string  `json:"op"`
	VirtualNS float64 `json:"virtual_ns"`
	WallNS    float64 `json:"wall_ns,omitempty"`
}

// Validate checks a Bench is a publishable artifact: named, with positive
// finite headline numbers and well-formed rows. flacbench refuses to write
// a bench JSON that fails this — a zeroed artifact sailing through CI
// unnoticed is exactly the failure mode the check exists to close.
func (b *Bench) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("bench has no name")
	}
	if !(b.OpsPerSec > 0) || math.IsInf(b.OpsPerSec, 0) {
		return fmt.Errorf("bench %s: ops_per_sec %v is not positive and finite", b.Name, b.OpsPerSec)
	}
	if !(b.P50NS > 0) || !(b.P99NS >= b.P50NS) || math.IsInf(b.P99NS, 0) {
		return fmt.Errorf("bench %s: malformed percentiles p50=%v p99=%v", b.Name, b.P50NS, b.P99NS)
	}
	for i, r := range b.Rows {
		if r.Nodes <= 0 || !(r.OfferedLoad > 0) || !(r.AchievedOpsPerSec > 0) ||
			r.P50NS == 0 || r.P99NS < r.P50NS || r.P999NS < r.P99NS ||
			math.IsInf(r.OfferedLoad, 0) || math.IsInf(r.AchievedOpsPerSec, 0) {
			return fmt.Errorf("bench %s: malformed row %d: %+v", b.Name, i, r)
		}
	}
	seen := map[string]bool{}
	for i, op := range b.Ops {
		if op.Op == "" {
			return fmt.Errorf("bench %s: op row %d has no name", b.Name, i)
		}
		if seen[op.Op] {
			return fmt.Errorf("bench %s: duplicate op row %q", b.Name, op.Op)
		}
		seen[op.Op] = true
		if !(op.VirtualNS > 0) || math.IsInf(op.VirtualNS, 0) {
			return fmt.Errorf("bench %s: op %q virtual_ns %v is not positive and finite", b.Name, op.Op, op.VirtualNS)
		}
		if op.WallNS < 0 || math.IsInf(op.WallNS, 0) || math.IsNaN(op.WallNS) {
			return fmt.Errorf("bench %s: op %q wall_ns %v is malformed", b.Name, op.Op, op.WallNS)
		}
	}
	return nil
}

func (r *Result) String() string {
	out := "== " + r.Name + " ==\n" + r.Table.String()
	if len(r.Ratios) > 0 {
		out += "headline ratios:\n"
		for k, v := range r.Ratios {
			out += fmt.Sprintf("  %-32s %.2fx\n", k, v)
		}
	}
	return out
}

func ns(v float64) string { return metrics.FormatNS(v) }
