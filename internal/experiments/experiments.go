// Package experiments reproduces the paper's evaluation (§4.2) and the
// ablations behind its design claims (§3). Each experiment builds its own
// simulated rack, runs the workload, and reports results in VIRTUAL time —
// the fabric's deterministic cost accounting — so runs are reproducible
// and independent of host scheduling. cmd/flacbench prints the tables; the
// repo-root benchmarks wrap the same functions.
package experiments

import (
	"fmt"

	"flacos/internal/metrics"
)

// Result is one experiment's rendered output plus raw series for
// programmatic checks (tests assert on the shapes the paper claims).
type Result struct {
	Name  string
	Table *metrics.Table
	// Ratios holds the experiment's headline comparisons, e.g.
	// "tcp/ipc set 64B" -> 2.1.
	Ratios map[string]float64
	// Bench, when set, is the experiment's machine-readable headline for
	// cross-PR tracking (flacbench -bench-json writes it to
	// BENCH_<name>.json).
	Bench *Bench
}

// Bench is one experiment's headline numbers in machine-readable form.
// Times are virtual nanoseconds; throughput is ops per virtual second.
type Bench struct {
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50NS     float64 `json:"p50_ns"`
	P99NS     float64 `json:"p99_ns"`
}

func (r *Result) String() string {
	out := "== " + r.Name + " ==\n" + r.Table.String()
	if len(r.Ratios) > 0 {
		out += "headline ratios:\n"
		for k, v := range r.Ratios {
			out += fmt.Sprintf("  %-32s %.2fx\n", k, v)
		}
	}
	return out
}

func ns(v float64) string { return metrics.FormatNS(v) }
