package experiments

import (
	"encoding/binary"
	"fmt"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/flacdk/delegation"
	"flacos/internal/flacdk/dksync"
	"flacos/internal/flacdk/quiescence"
	"flacos/internal/flacdk/replication"
	"flacos/internal/metrics"
)

// SyncConfig parameterizes ablation A.
type SyncConfig struct {
	Ops        int
	NodeCounts []int
	ReadPcts   []int
}

// DefaultSync sweeps node counts and read mixes.
func DefaultSync() SyncConfig {
	return SyncConfig{Ops: 4000, NodeCounts: []int{2, 4, 8}, ReadPcts: []int{0, 90}}
}

// SyncAblation quantifies §3.2's claim: lock-based synchronization is
// ineffective on non-coherent rack memory, while FlacDK's replication,
// delegation and quiescence methods stay cheap.
//
// Workload: a sharded counter structure (one shard per node) driven from
// every node. The methods differ exactly as the paper describes:
//
//   - lock-based guards the WHOLE structure with one global lock; every
//     section pays lock atomics plus invalidate-on-entry / flush-on-exit
//     of the touched data, and contending nodes serialize. The harness
//     runs deterministically and models contention with a serialization
//     surcharge: the i'th concurrent contender of a round is charged i
//     times the measured critical-section cost, the virtual time it would
//     have spent spinning.
//   - fabric atomics are the per-shard lower bound (counters only).
//   - replication reads its node-local replica for free and pays log
//     append + rack-wide replay for updates.
//   - delegation partitions by design: shard i's owner is node i; clients
//     pay one slot round trip, owners touch only local memory.
//   - quiescence reads a version pointer wait-free and publishes new
//     versions on update.
//
// Cost = summed virtual ns across all nodes / ops.
func SyncAblation(cfg SyncConfig) *Result {
	res := &Result{
		Name:   "Ablation A: synchronization methods on non-coherent memory (sharded counters)",
		Table:  metrics.NewTable("method", "nodes", "read%", "ns/op"),
		Ratios: map[string]float64{},
	}
	type key struct {
		method string
		nodes  int
		reads  int
	}
	costs := map[key]float64{}
	methods := []string{"lock-based", "fabric-atomics", "replication", "delegation", "quiescence"}
	for _, nodes := range cfg.NodeCounts {
		for _, readPct := range cfg.ReadPcts {
			for _, m := range methods {
				perOp := runSyncMethod(m, nodes, readPct, cfg.Ops)
				costs[key{m, nodes, readPct}] = perOp
				res.Table.AddRow(m, fmt.Sprintf("%d", nodes), fmt.Sprintf("%d", readPct), fmt.Sprintf("%.0f", perOp))
			}
		}
	}
	last := cfg.NodeCounts[len(cfg.NodeCounts)-1]
	for _, readPct := range cfg.ReadPcts {
		lock := costs[key{"lock-based", last, readPct}]
		for _, m := range []string{"replication", "delegation", "quiescence"} {
			if c := costs[key{m, last, readPct}]; c > 0 {
				res.Ratios[fmt.Sprintf("lock/%s %dn %d%%r", m, last, readPct)] = lock / c
			}
		}
	}
	return res
}

// runSyncMethod executes ops operations (readPct% reads, round-robin
// across nodes, shard chosen per op) and returns mean virtual ns per op.
func runSyncMethod(method string, nodes, readPct, ops int) float64 {
	f := fabric.New(fabric.Config{
		GlobalSize: 64 << 20,
		Nodes:      nodes,
		Latency:    fabric.DefaultLatency(),
	})
	isRead := func(i int) bool { return (i*37)%100 < readPct }
	// Shard choice decorrelated from the issuing node (which is i%nodes),
	// so delegation sees a realistic local/remote mix.
	shardOf := func(i int) int { return int(uint64(i)*2654435761>>16) % nodes }

	var do func(i int, n *fabric.Node)
	switch method {
	case "lock-based":
		// One lock guarding the whole sharded structure (8 bytes/shard).
		region := dksync.NewLockedRegion(f, uint64(nodes)*fabric.LineSize)
		do = func(i int, n *fabric.Node) {
			shard := region.Data.Add(uint64(shardOf(i)) * fabric.LineSize)
			before := n.VirtualNS()
			if isRead(i) {
				region.DoRead(n, func() { n.Load64(shard) })
			} else {
				region.Do(n, func() { n.Store64(shard, n.Load64(shard)+1) })
			}
			// Serialization surcharge: the i%nodes'th contender of this
			// round would have spun for its predecessors' sections.
			cs := n.VirtualNS() - before
			n.ChargeNS(int(cs) * (i % nodes))
		}
	case "fabric-atomics":
		base := f.Reserve(uint64(nodes)*fabric.LineSize, fabric.LineSize)
		do = func(i int, n *fabric.Node) {
			g := base.Add(uint64(shardOf(i)) * fabric.LineSize)
			if isRead(i) {
				n.AtomicLoad64(g)
			} else {
				n.Add64(g, 1)
			}
		}
	case "replication":
		log := replication.NewLog(f, 2048)
		reps := make([]*replication.Replica, nodes)
		for i := range reps {
			reps[i] = log.Replica(f.Node(i), &shardSM{v: make([]uint64, nodes)})
		}
		var payload [8]byte
		do = func(i int, n *fabric.Node) {
			r := reps[n.ID()]
			if isRead(i) {
				r.ReadLocal(func(replication.StateMachine) {}) // node-local
			} else {
				binary.LittleEndian.PutUint64(payload[:], uint64(shardOf(i)))
				r.Execute(1, payload[:])
			}
		}
	case "delegation":
		return runDelegationRounds(f, nodes, isRead, shardOf, ops)
	case "quiescence":
		dom := quiescence.NewDomain(f, nodes)
		arena := alloc.NewArena(f, 16<<20)
		parts := make([]*quiescence.Participant, nodes)
		allocs := make([]*alloc.NodeAllocator, nodes)
		for i := range parts {
			parts[i] = dom.Participant(f.Node(i), i)
			allocs[i] = arena.NodeAllocator(f.Node(i), 16)
		}
		cells := make([]*quiescence.VersionedCell, nodes)
		for s := range cells {
			cells[s] = quiescence.NewVersionedCell(f, f.Node(0), allocs[0], 64, nil)
		}
		buf := make([]byte, 8)
		updates := 0
		do = func(i int, n *fabric.Node) {
			p := parts[n.ID()]
			cell := cells[shardOf(i)]
			if isRead(i) {
				cell.Read(p, buf)
			} else {
				cell.Update(p, allocs[n.ID()], func(cur []byte) {
					binary.LittleEndian.PutUint64(cur, binary.LittleEndian.Uint64(cur)+1)
				})
				// Epoch housekeeping is amortized over updates, as real
				// quiescence deployments do.
				if updates++; updates%8 == 0 {
					p.TryAdvance()
					p.Collect()
				}
			}
		}
	default:
		panic("unknown method " + method)
	}

	for i := 0; i < ops; i++ {
		do(i, f.Node(i%nodes))
	}
	return float64(f.RackStats().VirtualNS) / float64(ops)
}

// runDelegationRounds drives the delegation method in rounds, the way a
// loaded system behaves: every node posts its pending request, each
// partition owner performs one sweep serving the whole batch (amortizing
// the packed-sequence poll), then callers collect replies.
func runDelegationRounds(f *fabric.Fabric, nodes int, isRead func(int) bool, shardOf func(int) int, ops int) float64 {
	domains := make([]*delegation.Domain, nodes)
	servers := make([]*delegation.Server, nodes)
	counters := make([]uint64, nodes) // owner-local state
	clients := make([][]*delegation.Client, nodes)
	for s := 0; s < nodes; s++ {
		s := s
		domains[s] = delegation.NewDomain(f, nodes)
		servers[s] = domains[s].Server(f.Node(s), func(op uint32, req, resp []byte) (int, uint32) {
			if op == 1 {
				counters[s]++
			}
			binary.LittleEndian.PutUint64(resp, counters[s])
			return 8, 0
		})
		clients[s] = make([]*delegation.Client, nodes)
		for c := 0; c < nodes; c++ {
			clients[s][c] = domains[s].Client(f.Node(c), c)
		}
	}
	resp := make([]byte, delegation.PayloadMax)
	rounds := ops / nodes
	done := 0
	for r := 0; r < rounds; r++ {
		type pending struct{ cl *delegation.Client }
		var waiting []pending
		for nd := 0; nd < nodes; nd++ {
			i := r*nodes + nd
			n := f.Node(nd)
			shard := shardOf(i)
			if shard == nd {
				if !isRead(i) {
					counters[shard]++
				}
				n.ChargeLocal() // owners manipulate their partition directly
				done++
				continue
			}
			op := uint32(1)
			if isRead(i) {
				op = 2
			}
			clients[shard][nd].Post(op, nil)
			waiting = append(waiting, pending{clients[shard][nd]})
			done++
		}
		for still := waiting; len(still) > 0; {
			for s := 0; s < nodes; s++ {
				servers[s].ServeOnce()
			}
			next := still[:0]
			for _, p := range still {
				if _, _, ok := p.cl.TryComplete(resp); !ok {
					next = append(next, p)
				}
			}
			still = next
		}
	}
	return float64(f.RackStats().VirtualNS) / float64(done)
}

// shardSM is the replicated sharded-counter state machine: op 1 increments
// the shard named in the payload.
type shardSM struct{ v []uint64 }

func (c *shardSM) Apply(op uint32, payload []byte) uint64 {
	if op == 1 {
		s := binary.LittleEndian.Uint64(payload)
		c.v[s]++
		return c.v[s]
	}
	return 0
}
