package experiments

import (
	"math"
	"testing"

	"flacos/internal/loadgen"
)

// TestEveryExperimentQuickSmoke runs every registered experiment at
// CI-quick sizes through one table-driven harness and checks the result
// is well-formed: a name, at least one table row, and finite ratios.
// The per-experiment shape tests assert domain claims; this test is the
// registry-level guarantee that nothing ships an experiment that panics,
// returns an empty table, or emits NaN ratios in -quick mode.
func TestEveryExperimentQuickSmoke(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"fig4", func() *Result {
			cfg := DefaultFig4()
			cfg.Requests = 60
			return Fig4(cfg)
		}},
		{"container", func() *Result {
			cfg := DefaultContainer()
			cfg.ImageBytes = 8 << 20
			return Container(cfg)
		}},
		{"sync", func() *Result {
			cfg := DefaultSync()
			cfg.Ops = 120
			return SyncAblation(cfg)
		}},
		{"pagecache", func() *Result {
			cfg := DefaultPageCache()
			cfg.Files, cfg.PagesPer = 2, 8
			return PageCacheAblation(cfg)
		}},
		{"faultbox", func() *Result {
			cfg := DefaultFaultBox()
			cfg.AppCounts = []int{2}
			return FaultBoxAblation(cfg)
		}},
		{"ipc", func() *Result {
			cfg := DefaultIPC()
			cfg.Rounds = 60
			return IPCAblation(cfg)
		}},
		{"dedup", func() *Result {
			return DedupAblation(DefaultDedup())
		}},
		{"density", func() *Result {
			cfg := DefaultDensity()
			cfg.Invokes = 30
			return DensityAblation(cfg)
		}},
		{"sched", func() *Result {
			cfg := DefaultSched()
			cfg.Tasks = 60
			cfg.CrashTasks = 12
			return SchedAblation(cfg)
		}},
		{"redisrack", func() *Result {
			cfg := DefaultRedisRack()
			cfg.Batches = 30
			cfg.LatencyOps = 20
			res, failed := RedisRack(cfg)
			if failed {
				t.Error("redisrack reported failure in smoke sizes")
			}
			return res
		}},
		{"redisscale", func() *Result {
			cfg := quickRedisScale()
			res, failed := RedisScale(cfg)
			if failed {
				t.Errorf("redisscale reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"tiering", func() *Result {
			cfg := quickTiering()
			res, failed := Tiering(cfg)
			if failed {
				t.Errorf("tiering reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"trace", func() *Result {
			cfg := DefaultTrace()
			cfg.EmitEvents = 5_000
			cfg.Tasks = 60
			cfg.FSOps = 30
			res, failed := Trace(cfg)
			if failed {
				t.Error("trace experiment reported failure in smoke sizes")
			}
			return res
		}},
		{"membership", func() *Result {
			cfg := DefaultMembership()
			cfg.Rounds = 2
			cfg.TasksPerRound = 24
			res, failed := Membership(cfg)
			if failed {
				t.Errorf("membership experiment reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"health", func() *Result {
			res, failed := Health(quickHealth())
			if failed {
				t.Errorf("health experiment reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"fabric", func() *Result {
			res, failed := Fabric(quickFabric())
			if failed {
				t.Errorf("fabric experiment reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"torture", func() *Result {
			cfg := DefaultTorture()
			cfg.Seeds = []int64{1}
			cfg.OpsPerClient = 60
			cfg.Events = 2
			res, failures := Torture(cfg)
			if len(failures) > 0 {
				t.Errorf("torture smoke failed %d sweep(s)", len(failures))
			}
			return res
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res := tc.run()
			if res == nil {
				t.Fatal("nil result")
			}
			if res.Name == "" {
				t.Error("empty result name")
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Error("empty result table")
			}
			if res.String() == "" {
				t.Error("empty rendering")
			}
			for k, v := range res.Ratios {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("ratio %q is %v", k, v)
				}
			}
		})
	}
}

// quickRedisScale is the CI-quick redisscale configuration, matching
// flacbench -quick: three node counts, a tenth of the full workload, and
// the smoke-sized combining gate.
func quickRedisScale() RedisScaleConfig {
	cfg := DefaultRedisScale()
	cfg.NodeCounts = []int{1, 2, 4}
	cfg.CombineNodes = 4
	cfg.Rounds = 10
	cfg.OpsPerRound = 32
	cfg.CombineGate = 1.1
	return cfg
}

// quickTiering is the unit-test tiering configuration: the flacbench
// -quick shape shrunk again so the smoke registry stays fast. The gate
// is looser than -quick's 1.15 because at a few thousand pages the
// daemon's fixed per-move costs amortize over very few accesses.
func quickTiering() TieringConfig {
	cfg := DefaultTiering()
	cfg.SpanPages = 1 << 12
	cfg.Ops = 24_000
	cfg.Rounds = 8
	cfg.LocalPagesPerNode = 256
	cfg.MaxMovesPerStep = 4096
	cfg.Gate = 1.05
	return cfg
}

// TestTieringBenchHeadline pins the tiering experiment's machine-readable
// contract behind flacbench -bench-json: a Bench named "tiering" whose
// throughput is the daemon phase's virtual capacity, with the open-loop
// sweep attached as rows.
func TestTieringBenchHeadline(t *testing.T) {
	t.Parallel()
	res, failed := Tiering(quickTiering())
	if failed {
		t.Fatalf("tiering failed at smoke sizes:\n%s", res)
	}
	b := res.Bench
	if b == nil {
		t.Fatal("tiering result has no Bench headline")
	}
	if b.Name != "tiering" {
		t.Errorf("bench name %q", b.Name)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("headline fails Validate: %v", err)
	}
	if len(b.Rows) != len(DefaultTiering().LoadFactors) {
		t.Errorf("got %d sweep rows, want %d", len(b.Rows), len(DefaultTiering().LoadFactors))
	}
}

// TestTieringDeterministic locks the experiment's reproducibility claim:
// the whole pipeline — workload generation, both phases, daemon decisions,
// open-loop replay — is a pure function of the seed, so two runs at the
// same configuration must render bit-identical tables and ratios.
func TestTieringDeterministic(t *testing.T) {
	t.Parallel()
	cfg := quickTiering()
	a, aFailed := Tiering(cfg)
	b, bFailed := Tiering(cfg)
	if aFailed != bFailed {
		t.Errorf("verdict differs across identical runs: %v vs %v", aFailed, bFailed)
	}
	if a.String() != b.String() {
		t.Errorf("renderings differ across identical runs:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for k, v := range a.Ratios {
		if b.Ratios[k] != v {
			t.Errorf("ratio %q differs: %v vs %v", k, v, b.Ratios[k])
		}
	}
}

// quickHealth is the CI-quick health configuration, matching flacbench
// -quick: a third of the closed-loop tasks per ramp level. The ramp
// itself is untouched — the bench headline is derived from RampHops, and
// shrinking it would change the tracked BENCH_health.json artifact.
func quickHealth() HealthConfig {
	cfg := DefaultHealth()
	cfg.TasksPerLevel = 80
	return cfg
}

// TestHealthBenchHeadline pins the health experiment's machine-readable
// contract: a Bench named "health" whose percentiles are the VIRTUAL
// per-op fabric cost on a healthy link (p50) versus the worst ramp level
// (p99) — accounting-derived, so it must also be bit-identical across
// runs and across -quick vs full sizes for the tracked-artifact drift
// check to hold.
func TestHealthBenchHeadline(t *testing.T) {
	t.Parallel()
	res, failed := Health(quickHealth())
	if failed {
		t.Fatalf("health failed at smoke sizes:\n%s", res)
	}
	b := res.Bench
	if b == nil {
		t.Fatal("health result has no Bench headline")
	}
	if b.Name != "health" {
		t.Errorf("bench name %q", b.Name)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("headline fails Validate: %v", err)
	}
	sameBench := func(a, b *Bench) bool {
		return a.Name == b.Name && a.OpsPerSec == b.OpsPerSec &&
			a.P50NS == b.P50NS && a.P99NS == b.P99NS
	}
	quick, full := healthBench(quickHealth()), healthBench(DefaultHealth())
	if !sameBench(quick, full) {
		t.Errorf("bench headline differs across quick/full sizes: %+v vs %+v", quick, full)
	}
	if again := healthBench(DefaultHealth()); !sameBench(again, full) {
		t.Errorf("bench headline differs across runs: %+v vs %+v", again, full)
	}
}

// TestMembershipBenchHeadline pins the membership experiment's
// machine-readable contract: a Bench named "membership" whose
// percentiles are the wall-clock crash->Dead detection latency.
func TestMembershipBenchHeadline(t *testing.T) {
	cfg := DefaultMembership()
	cfg.Rounds = 2
	cfg.TasksPerRound = 24
	res, failed := Membership(cfg)
	if failed {
		t.Fatal("membership failed at smoke sizes")
	}
	b := res.Bench
	if b == nil {
		t.Fatal("membership result has no Bench headline")
	}
	if b.Name != "membership" {
		t.Errorf("bench name %q", b.Name)
	}
	if b.OpsPerSec <= 0 {
		t.Errorf("ops/s %v", b.OpsPerSec)
	}
	if b.P50NS <= 0 || b.P99NS < b.P50NS {
		t.Errorf("percentiles p50=%v p99=%v", b.P50NS, b.P99NS)
	}
}

// TestRedisRackBenchHeadline pins the machine-readable contract behind
// flacbench -bench-json: the redisrack result must publish a Bench with
// positive throughput and ordered percentiles.
func TestRedisRackBenchHeadline(t *testing.T) {
	cfg := DefaultRedisRack()
	cfg.Batches = 30
	cfg.LatencyOps = 20
	res, failed := RedisRack(cfg)
	if failed {
		t.Fatal("redisrack failed at smoke sizes")
	}
	b := res.Bench
	if b == nil {
		t.Fatal("redisrack result has no Bench headline")
	}
	if b.Name != "redisrack" {
		t.Errorf("bench name %q", b.Name)
	}
	if b.OpsPerSec <= 0 {
		t.Errorf("ops/s %v", b.OpsPerSec)
	}
	if b.P50NS <= 0 || b.P99NS < b.P50NS {
		t.Errorf("percentiles p50=%v p99=%v", b.P50NS, b.P99NS)
	}
}

// TestRedisScaleBenchHeadline pins the scaling sweep's machine-readable
// contract: a Bench named "redisscale" carrying the full per-node-count,
// per-offered-load row series, all of it passing Validate.
func TestRedisScaleBenchHeadline(t *testing.T) {
	cfg := quickRedisScale()
	res, failed := RedisScale(cfg)
	if failed {
		t.Fatal("redisscale failed at smoke sizes")
	}
	b := res.Bench
	if b == nil {
		t.Fatal("redisscale result has no Bench headline")
	}
	if b.Name != "redisscale" {
		t.Errorf("bench name %q", b.Name)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("headline fails Validate: %v", err)
	}
	wantRows := len(cfg.NodeCounts) * len(cfg.LoadFactors)
	if len(b.Rows) != wantRows {
		t.Errorf("got %d rows, want %d (node counts x load factors)", len(b.Rows), wantRows)
	}
	for _, r := range b.Rows {
		if r.P99NS < r.P50NS || r.P999NS < r.P99NS {
			t.Errorf("row %+v has disordered percentiles", r)
		}
	}
}

// TestBenchValidateRejectsMalformed locks the artifact guard: a zeroed or
// half-filled Bench must not be writable as a bench JSON.
func TestBenchValidateRejectsMalformed(t *testing.T) {
	good := Bench{Name: "x", OpsPerSec: 10, P50NS: 5, P99NS: 9}
	if err := good.Validate(); err != nil {
		t.Fatalf("well-formed bench rejected: %v", err)
	}
	bad := []Bench{
		{},
		{Name: "x"},
		{Name: "x", OpsPerSec: -1, P50NS: 5, P99NS: 9},
		{Name: "x", OpsPerSec: math.Inf(1), P50NS: 5, P99NS: 9},
		{Name: "x", OpsPerSec: 10, P50NS: 0, P99NS: 9},
		{Name: "x", OpsPerSec: 10, P50NS: 9, P99NS: 5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("malformed bench %d passed Validate: %+v", i, b)
		}
	}
	row := good
	row.Rows = []loadgen.Row{{Nodes: 0, OfferedLoad: 1, AchievedOpsPerSec: 1, P50NS: 1, P99NS: 2, P999NS: 3}}
	if err := row.Validate(); err == nil {
		t.Error("bench with zero-node row passed Validate")
	}
	row.Rows = []loadgen.Row{{Nodes: 2, OfferedLoad: 1, AchievedOpsPerSec: 1, P50NS: 5, P99NS: 2, P999NS: 3}}
	if err := row.Validate(); err == nil {
		t.Error("bench with disordered row percentiles passed Validate")
	}
	row.Rows = []loadgen.Row{{Nodes: 2, OfferedLoad: 1, AchievedOpsPerSec: 1, P50NS: 1, P99NS: 2, P999NS: 3}}
	if err := row.Validate(); err != nil {
		t.Errorf("well-formed row rejected: %v", err)
	}
}

// quickFabric is the unit-test fabric configuration: tiny wall loops and
// the wall-clock gates disabled — under t.Parallel() every other smoke
// experiment is competing for the host clock, so only the deterministic
// virtual-model gate is meaningful here (and it stays on).
func quickFabric() FabricConfig {
	cfg := DefaultFabric()
	cfg.HitReps, cfg.MissReps, cfg.AtomicReps = 5_000, 2_000, 3_000
	cfg.RangedReps = 200
	cfg.SpeedupGate = 0
	cfg.GateHookDispatch = false
	return cfg
}

// TestFabricBenchHeadline locks the shape of BENCH_fabric.json: the
// artifact's per-op rows are virtual-only (bit-stable across hosts, so
// the committed baseline never drifts), every advertised op is present,
// and two runs of the experiment produce byte-identical headlines.
func TestFabricBenchHeadline(t *testing.T) {
	res, _ := Fabric(quickFabric())
	if res.Bench == nil {
		t.Fatal("fabric experiment published no bench headline")
	}
	b := res.Bench
	if b.Name != "fabric" {
		t.Errorf("bench name %q, want fabric", b.Name)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("fabric bench failed Validate: %v", err)
	}
	want := []string{
		"read-hit", "write-hit", "read-miss",
		"wbr-1", "inv-1", "wbr-4", "inv-4", "wbr-16", "inv-16", "wbr-64", "inv-64",
		"atomic-rmw", "fence",
	}
	if len(b.Ops) != len(want) {
		t.Fatalf("bench has %d op rows, want %d", len(b.Ops), len(want))
	}
	for i, name := range want {
		op := b.Ops[i]
		if op.Op != name {
			t.Errorf("op row %d is %q, want %q", i, op.Op, name)
		}
		if op.WallNS != 0 {
			t.Errorf("op %q carries wall_ns %v; committed rows must be virtual-only", op.Op, op.WallNS)
		}
		if op.VirtualNS <= 0 {
			t.Errorf("op %q virtual_ns %v not positive", op.Op, op.VirtualNS)
		}
	}
	if b.P50NS != b.Ops[0].VirtualNS {
		t.Errorf("p50 %v is not the read-hit virtual cost %v", b.P50NS, b.Ops[0].VirtualNS)
	}

	// Determinism: a second run's headline is identical field for field.
	res2, _ := Fabric(quickFabric())
	b2 := res2.Bench
	if b.OpsPerSec != b2.OpsPerSec || b.P50NS != b2.P50NS || b.P99NS != b2.P99NS {
		t.Errorf("headline drifted across runs: %+v vs %+v", b, b2)
	}
	for i := range b.Ops {
		if b.Ops[i] != b2.Ops[i] {
			t.Errorf("op row %d drifted across runs: %+v vs %+v", i, b.Ops[i], b2.Ops[i])
		}
	}
}

// TestBenchValidateOpRows extends the artifact guard to the per-op rows.
func TestBenchValidateOpRows(t *testing.T) {
	base := Bench{Name: "x", OpsPerSec: 10, P50NS: 5, P99NS: 9}
	ok := base
	ok.Ops = []OpCost{{Op: "read-hit", VirtualNS: 100}, {Op: "fence", VirtualNS: 30, WallNS: 18}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("well-formed op rows rejected: %v", err)
	}
	bad := [][]OpCost{
		{{Op: "", VirtualNS: 100}},
		{{Op: "a", VirtualNS: 0}},
		{{Op: "a", VirtualNS: -1}},
		{{Op: "a", VirtualNS: math.Inf(1)}},
		{{Op: "a", VirtualNS: 100, WallNS: -1}},
		{{Op: "a", VirtualNS: 100, WallNS: math.NaN()}},
		{{Op: "a", VirtualNS: 100}, {Op: "a", VirtualNS: 200}}, // duplicate name
	}
	for i, ops := range bad {
		b := base
		b.Ops = ops
		if err := b.Validate(); err == nil {
			t.Errorf("malformed op rows %d passed Validate: %+v", i, ops)
		}
	}
}
