package experiments

import (
	"math"
	"testing"
)

// TestEveryExperimentQuickSmoke runs every registered experiment at
// CI-quick sizes through one table-driven harness and checks the result
// is well-formed: a name, at least one table row, and finite ratios.
// The per-experiment shape tests assert domain claims; this test is the
// registry-level guarantee that nothing ships an experiment that panics,
// returns an empty table, or emits NaN ratios in -quick mode.
func TestEveryExperimentQuickSmoke(t *testing.T) {
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"fig4", func() *Result {
			cfg := DefaultFig4()
			cfg.Requests = 60
			return Fig4(cfg)
		}},
		{"container", func() *Result {
			cfg := DefaultContainer()
			cfg.ImageBytes = 8 << 20
			return Container(cfg)
		}},
		{"sync", func() *Result {
			cfg := DefaultSync()
			cfg.Ops = 120
			return SyncAblation(cfg)
		}},
		{"pagecache", func() *Result {
			cfg := DefaultPageCache()
			cfg.Files, cfg.PagesPer = 2, 8
			return PageCacheAblation(cfg)
		}},
		{"faultbox", func() *Result {
			cfg := DefaultFaultBox()
			cfg.AppCounts = []int{2}
			return FaultBoxAblation(cfg)
		}},
		{"ipc", func() *Result {
			cfg := DefaultIPC()
			cfg.Rounds = 60
			return IPCAblation(cfg)
		}},
		{"dedup", func() *Result {
			return DedupAblation(DefaultDedup())
		}},
		{"density", func() *Result {
			cfg := DefaultDensity()
			cfg.Invokes = 30
			return DensityAblation(cfg)
		}},
		{"sched", func() *Result {
			cfg := DefaultSched()
			cfg.Tasks = 60
			cfg.CrashTasks = 12
			return SchedAblation(cfg)
		}},
		{"redisrack", func() *Result {
			cfg := DefaultRedisRack()
			cfg.Batches = 30
			cfg.LatencyOps = 20
			res, failed := RedisRack(cfg)
			if failed {
				t.Error("redisrack reported failure in smoke sizes")
			}
			return res
		}},
		{"trace", func() *Result {
			cfg := DefaultTrace()
			cfg.EmitEvents = 5_000
			cfg.Tasks = 60
			cfg.FSOps = 30
			res, failed := Trace(cfg)
			if failed {
				t.Error("trace experiment reported failure in smoke sizes")
			}
			return res
		}},
		{"membership", func() *Result {
			cfg := DefaultMembership()
			cfg.Rounds = 2
			cfg.TasksPerRound = 24
			res, failed := Membership(cfg)
			if failed {
				t.Errorf("membership experiment reported failure in smoke sizes:\n%s", res)
			}
			return res
		}},
		{"torture", func() *Result {
			cfg := DefaultTorture()
			cfg.Seeds = []int64{1}
			cfg.OpsPerClient = 60
			cfg.Events = 2
			res, failures := Torture(cfg)
			if len(failures) > 0 {
				t.Errorf("torture smoke failed %d sweep(s)", len(failures))
			}
			return res
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res := tc.run()
			if res == nil {
				t.Fatal("nil result")
			}
			if res.Name == "" {
				t.Error("empty result name")
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Error("empty result table")
			}
			if res.String() == "" {
				t.Error("empty rendering")
			}
			for k, v := range res.Ratios {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("ratio %q is %v", k, v)
				}
			}
		})
	}
}

// TestMembershipBenchHeadline pins the membership experiment's
// machine-readable contract: a Bench named "membership" whose
// percentiles are the wall-clock crash->Dead detection latency.
func TestMembershipBenchHeadline(t *testing.T) {
	cfg := DefaultMembership()
	cfg.Rounds = 2
	cfg.TasksPerRound = 24
	res, failed := Membership(cfg)
	if failed {
		t.Fatal("membership failed at smoke sizes")
	}
	b := res.Bench
	if b == nil {
		t.Fatal("membership result has no Bench headline")
	}
	if b.Name != "membership" {
		t.Errorf("bench name %q", b.Name)
	}
	if b.OpsPerSec <= 0 {
		t.Errorf("ops/s %v", b.OpsPerSec)
	}
	if b.P50NS <= 0 || b.P99NS < b.P50NS {
		t.Errorf("percentiles p50=%v p99=%v", b.P50NS, b.P99NS)
	}
}

// TestRedisRackBenchHeadline pins the machine-readable contract behind
// flacbench -bench-json: the redisrack result must publish a Bench with
// positive throughput and ordered percentiles.
func TestRedisRackBenchHeadline(t *testing.T) {
	cfg := DefaultRedisRack()
	cfg.Batches = 30
	cfg.LatencyOps = 20
	res, failed := RedisRack(cfg)
	if failed {
		t.Fatal("redisrack failed at smoke sizes")
	}
	b := res.Bench
	if b == nil {
		t.Fatal("redisrack result has no Bench headline")
	}
	if b.Name != "redisrack" {
		t.Errorf("bench name %q", b.Name)
	}
	if b.OpsPerSec <= 0 {
		t.Errorf("ops/s %v", b.OpsPerSec)
	}
	if b.P50NS <= 0 || b.P99NS < b.P50NS {
		t.Errorf("percentiles p50=%v p99=%v", b.P50NS, b.P99NS)
	}
}
