package experiments

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/membership"
	"flacos/internal/metrics"
	"flacos/internal/redis"
	"flacos/internal/sched"
)

// MembershipConfig parameterizes the coordinated failure-detection
// experiment.
type MembershipConfig struct {
	// Nodes sizes the rack. The last node is held out of the boot
	// population and hot-plugs into a free slot under load.
	Nodes int
	// Rounds is how many crash -> detect -> recover cycles each mode
	// runs (victims cycle over nodes 1..Nodes-1; node 0 never dies).
	Rounds int
	// TasksPerRound is the background scheduler burst submitted right
	// before each crash, preferred across every node including the
	// victim — the work whose recovery is being timed.
	TasksPerRound int
}

// DefaultMembership matches the acceptance setup: a 4-node rack, eight
// crash cycles per mode.
func DefaultMembership() MembershipConfig {
	return MembershipConfig{Nodes: 4, Rounds: 8, TasksPerRound: 96}
}

// Membership measures the coordinated failure-detection layer
// (internal/membership) against the old per-subsystem recovery paths.
//
// Latencies here are WALL nanoseconds, not virtual: both the membership
// detector and sched's lease keeper are ticker-driven, so wall time is
// the honest clock for them (virtual time does not advance while a
// failure sits undetected).
//
//   - Membership mode: heartbeats + phi detection; ONE Dead event
//     sweeps the dead node's leases and generation-fences its store
//     views. Measured: crash->Dead detection, crash->sweep completion,
//     and crash->burst completion; plus the hot-plug join->serving
//     time for the held-out node, and a zombie-write probe after every
//     restart (a pre-death view must observe ErrFenced forever).
//   - Baseline mode: no membership layer. The same burst's recovery
//     waits on sched's conservative lease-expiry keeper
//     (ProbeRounds x ReclaimTick = 20ms), the old per-subsystem path;
//     the store has no fencing at all in this mode.
//
// The returned bool reports failure: a zombie write leaking through a
// fence, a detection/recovery timeout, a DoneCell not exactly 1, or
// membership recovery not beating the lease-expiry baseline by at
// least 1.2x.
func Membership(cfg MembershipConfig) (*Result, bool) {
	res := &Result{
		Name:   "Membership: coordinated failure detection vs per-subsystem recovery",
		Table:  metrics.NewTable("phase", "mode", "metric", "value"),
		Ratios: map[string]float64{},
	}
	var gates []string
	gatef := func(format string, args ...any) {
		gates = append(gates, fmt.Sprintf(format, args...))
	}

	mem := newMemRack(cfg, true)
	hotNS, ok := mem.hotPlug(cfg)
	if !ok {
		gatef("hot-plug resync read missing/corrupt committed state")
	}
	res.Table.AddRow("hot-plug", "membership", "join -> serving under load (wall)", ns(hotNS))

	detect := metrics.NewHistogram()
	sweep := metrics.NewHistogram()
	complete := metrics.NewHistogram()
	leaks := 0
	memStart := time.Now()
	for r := 0; r < cfg.Rounds; r++ {
		victim := 1 + r%(cfg.Nodes-1)
		d, s, c, leak, ok := mem.crashRound(cfg, victim)
		if !ok {
			gatef("membership round %d (victim %d): detection/recovery timed out", r, victim)
			continue
		}
		detect.Record(float64(d.Nanoseconds()))
		sweep.Record(float64(s.Nanoseconds()))
		complete.Record(float64(c.Nanoseconds()))
		if leak {
			leaks++
		}
	}
	memElapsed := time.Since(memStart)
	if !mem.checkExactlyOnce(res) {
		gatef("membership mode broke exactly-once completion")
	}
	mem.stop()

	base := newMemRack(cfg, false)
	baseDetect := metrics.NewHistogram()
	baseComplete := metrics.NewHistogram()
	for r := 0; r < cfg.Rounds; r++ {
		victim := 1 + r%(cfg.Nodes-1)
		d, c, ok := base.baselineRound(cfg, victim)
		if !ok {
			gatef("baseline round %d (victim %d): lease reclaim timed out", r, victim)
			continue
		}
		baseDetect.Record(float64(d.Nanoseconds()))
		baseComplete.Record(float64(c.Nanoseconds()))
	}
	if !base.checkExactlyOnce(res) {
		gatef("baseline mode broke exactly-once completion")
	}
	base.stop()

	for _, row := range []struct {
		phase, mode, metric string
		h                   *metrics.Histogram
	}{
		{"detect", "membership", "crash -> Dead (wall) p50/p99", detect},
		{"detect", "lease-expiry baseline", "crash -> first reclaim (wall) p50/p99", baseDetect},
		{"recover", "membership", "crash -> sweep done (wall) p50/p99", sweep},
		{"recover", "membership", "crash -> burst complete (wall) p50/p99", complete},
		{"recover", "lease-expiry baseline", "crash -> burst complete (wall) p50/p99", baseComplete},
	} {
		s := row.h.Summarize()
		res.Table.AddRow(row.phase, row.mode, row.metric,
			fmt.Sprintf("%s / %s", ns(s.P50), ns(s.P99)))
	}
	res.Table.AddRow("fencing", "membership", "zombie write leaks",
		fmt.Sprintf("%d / %d rounds", leaks, cfg.Rounds))
	if leaks > 0 {
		gatef("%d zombie write(s) leaked through a generation fence", leaks)
	}

	detectRatio, recoverRatio := 0.0, 0.0
	if m := detect.Mean(); m > 0 {
		detectRatio = baseDetect.Mean() / m
	}
	if m := complete.Mean(); m > 0 {
		recoverRatio = baseComplete.Mean() / m
	}
	res.Ratios["baseline/membership detection"] = detectRatio
	res.Ratios["baseline/membership recovery"] = recoverRatio
	if recoverRatio < 1.2 {
		gatef("membership recovery %.2fx the baseline, want >= 1.2x", recoverRatio)
	}
	for _, g := range gates {
		res.Table.AddRow("GATE", "FAIL", g, "")
	}

	tasks := float64(cfg.Rounds * cfg.TasksPerRound)
	opsPerSec := 0.0
	if memElapsed > 0 {
		opsPerSec = tasks / memElapsed.Seconds()
	}
	ds := detect.Summarize()
	res.Bench = &Bench{
		Name:      "membership",
		OpsPerSec: opsPerSec,
		P50NS:     ds.P50,
		P99NS:     ds.P99,
	}
	return res, len(gates) > 0
}

// memWaitTimeout bounds every detection/recovery poll: crossing it means
// the path under test is broken, not slow.
const memWaitTimeout = 10 * time.Second

// memRack is one mode's rack: fabric + tuned scheduler + shared store,
// plus the membership layer when the mode uses it.
type memRack struct {
	f     *fabric.Fabric
	s     *sched.Scheduler
	store *redis.RackStore

	tb      *membership.Table
	members []*membership.Member

	fn       sched.FuncID
	doneBase fabric.GPtr
	taskSeq  uint64
	started  []atomic.Uint64 // per node: tasks that began executing there

	mu        sync.Mutex
	deadSeen  map[[2]uint64]bool
	recovered chan time.Time
}

func newMemRack(cfg MembershipConfig, withMembership bool) *memRack {
	r := &memRack{
		deadSeen:  make(map[[2]uint64]bool),
		recovered: make(chan time.Time, 64),
	}
	r.f = fabric.New(fabric.Config{GlobalSize: 128 << 20, Nodes: cfg.Nodes})
	// ProbeRounds x ReclaimTick = 20ms: the conservative per-subsystem
	// lease-expiry timeout the membership layer replaces as the TIMELY
	// path (it stays on as the backstop in both modes).
	r.s = sched.New(r.f, sched.Config{
		TableCap:    256,
		Policy:      sched.PolicyLocality,
		ProbeRounds: 40,
		ReclaimTick: 500 * time.Microsecond,
		IdleTick:    200 * time.Microsecond,
		StealGrace:  500 * time.Microsecond,
	})
	cells := uint64(cfg.Rounds*cfg.TasksPerRound + cfg.TasksPerRound + 64)
	r.doneBase = r.f.Reserve(cells*8, fabric.LineSize)
	r.started = make([]atomic.Uint64, cfg.Nodes)
	r.fn = r.s.Register(func(n *fabric.Node, arg0, arg1 uint64) {
		// Announce the start (rounds crash a node only once it is
		// observably mid-task), linger off-fabric long enough for the
		// crash to land, then touch the fabric so runners on the crashed
		// node die with it.
		r.started[n.ID()].Add(1)
		time.Sleep(200 * time.Microsecond)
		n.Load64(r.doneBase + fabric.GPtr(arg1*8))
	})
	r.s.Start()
	r.store = redis.NewRackStore(r.f, redis.RackStoreConfig{
		ArenaBytes: 8 << 20,
		MaxViews:   8*cfg.Rounds + 32,
	})
	if err := r.store.Attach(r.f.Node(0)).Set("warm", []byte("committed"), 0); err != nil {
		panic(err)
	}
	if !withMembership {
		return r
	}
	r.tb = membership.New(r.f, membership.Config{
		HeartbeatTick: 100 * time.Microsecond,
		PhiSuspect:    3,
		PhiDead:       6,
		DeadStrikes:   2,
	})
	r.members = make([]*membership.Member, cfg.Nodes)
	hot := cfg.Nodes - 1
	for id := 0; id < hot; id++ {
		r.join(id)
	}
	r.s.SetNodeServing(hot, false) // held out until hotPlug
	r.s.SetLiveness(r.tb.Alive)
	return r
}

// join (re)joins node id, activates it, and starts its loops; node 0's
// member carries the Dead subscription that performs the rack sweep.
func (r *memRack) join(id int) {
	if old := r.members[id]; old != nil {
		old.Stop()
	}
	m, err := r.tb.Join(r.f.Node(id))
	if err != nil {
		panic(err)
	}
	if err := m.Activate(); err != nil {
		panic(err)
	}
	if id == 0 {
		m.Subscribe(r.onDead)
	}
	m.Start()
	r.members[id] = m
}

// onDead is the coordinated sweep: reclaim the dead node's leases and
// fence its views, once per (slot, generation), then stamp the wall
// time the rack finished recovering.
func (r *memRack) onDead(ev membership.Event) {
	if ev.Kind != membership.EvDead {
		return
	}
	key := [2]uint64{uint64(ev.Slot), ev.Generation}
	r.mu.Lock()
	done := r.deadSeen[key]
	r.deadSeen[key] = true
	r.mu.Unlock()
	if done {
		return
	}
	n0 := r.f.Node(0)
	r.s.ReclaimNode(n0, ev.Node)
	r.store.FenceNode(n0, ev.Node, ev.Generation)
	select {
	case r.recovered <- time.Now():
	default:
	}
}

// burst submits count background tasks from node 0, preferred round-
// robin across all nodes (the victim included).
func (r *memRack) burst(count, nodes int) []sched.Handle {
	n0 := r.f.Node(0)
	hs := make([]sched.Handle, 0, count)
	for i := 0; i < count; i++ {
		idx := r.taskSeq
		r.taskSeq++
		hs = append(hs, r.s.Submit(n0, sched.Task{
			Fn:        r.fn,
			Arg1:      idx,
			Preferred: int(idx) % nodes,
			DoneCell:  r.doneBase + fabric.GPtr(idx*8),
		}))
	}
	return hs
}

func (r *memRack) waitHandles(hs []sched.Handle) {
	n0 := r.f.Node(0)
	for _, h := range hs {
		r.s.Wait(n0, h)
	}
}

// hotPlug joins the held-out last node under background load and
// returns the wall time from Join to its first served task.
func (r *memRack) hotPlug(cfg MembershipConfig) (float64, bool) {
	hot := cfg.Nodes - 1
	bg := r.burst(cfg.TasksPerRound, hot) // load on the existing population
	start := time.Now()
	m, err := r.tb.Join(r.f.Node(hot))
	if err != nil {
		panic(err)
	}
	// Resync while Joining: the shared store must serve committed state
	// to the joiner before it activates.
	if v, ok := r.store.Attach(r.f.Node(hot)).Get("warm"); !ok || string(v) != "committed" {
		return 0, false
	}
	if err := m.Activate(); err != nil {
		panic(err)
	}
	m.Start()
	r.members[hot] = m
	r.s.SetNodeServing(hot, true)
	// A burst preferred ONLY at the joiner closes the measurement: its
	// completion proves the new node is claiming and serving work.
	probe := make([]sched.Handle, 0, 4)
	n0 := r.f.Node(0)
	for i := 0; i < 4; i++ {
		idx := r.taskSeq
		r.taskSeq++
		probe = append(probe, r.s.Submit(n0, sched.Task{
			Fn:        r.fn,
			Arg1:      idx,
			Preferred: hot,
			DoneCell:  r.doneBase + fabric.GPtr(idx*8),
		}))
	}
	r.waitHandles(probe)
	elapsed := float64(time.Since(start).Nanoseconds())
	r.waitHandles(bg)
	return elapsed, true
}

// crashRound runs one membership-mode cycle against victim and returns
// (crash->Dead, crash->sweep, crash->burst complete, zombieLeak, ok).
func (r *memRack) crashRound(cfg MembershipConfig, victim int) (detect, sweep, complete time.Duration, leak, ok bool) {
	// The previous round's victim may still be converging back to Alive;
	// crashing a node the detector already counts dead would measure
	// nothing.
	deadline := time.Now().Add(memWaitTimeout)
	for !r.tb.Alive(victim) {
		if time.Now().After(deadline) {
			return 0, 0, 0, false, false
		}
		time.Sleep(50 * time.Microsecond)
	}
	for { // stale recovery stamps from earlier rounds
		select {
		case <-r.recovered:
			continue
		default:
		}
		break
	}
	gen := r.members[victim].Generation()

	s0 := r.started[victim].Load()
	hs := r.burst(cfg.TasksPerRound, cfg.Nodes)
	if !r.waitStarted(victim, s0) {
		return 0, 0, 0, false, false
	}
	crashAt := time.Now()
	r.f.Node(victim).Crash()

	deadline = time.Now().Add(memWaitTimeout)
	for r.tb.Alive(victim) {
		if time.Now().After(deadline) {
			return 0, 0, 0, false, false
		}
		time.Sleep(20 * time.Microsecond)
	}
	detect = time.Since(crashAt)
	select {
	case ts := <-r.recovered:
		sweep = ts.Sub(crashAt)
	case <-time.After(memWaitTimeout):
		return 0, 0, 0, false, false
	}
	r.waitHandles(hs)
	complete = time.Since(crashAt)

	// Hot-plug the victim back: restart the fabric node, respawn its
	// runners, rejoin with a bumped generation — then probe the fence. A
	// view carrying the dead generation must stay write-dead forever,
	// even though the node underneath it is back.
	r.f.Node(victim).Restart()
	r.s.RebootNode(victim)
	r.join(victim)
	zombie := r.store.AttachGen(r.f.Node(victim), gen)
	leak = !errors.Is(zombie.Set("warm", []byte("necro"), 0), redis.ErrFenced)
	return detect, sweep, complete, leak, true
}

// baselineRound is the per-subsystem path: no membership layer, so
// "detection" is sched's lease-expiry keeper noticing on its own
// (ProbeRounds x ReclaimTick later), and the store is never fenced.
func (r *memRack) baselineRound(cfg MembershipConfig, victim int) (detect, complete time.Duration, ok bool) {
	n0 := r.f.Node(0)
	before := r.s.StatsFrom(n0).Reclaimed

	s0 := r.started[victim].Load()
	hs := r.burst(cfg.TasksPerRound, cfg.Nodes)
	if !r.waitStarted(victim, s0) {
		return 0, 0, false
	}
	crashAt := time.Now()
	r.f.Node(victim).Crash()

	deadline := time.Now().Add(memWaitTimeout)
	for r.s.StatsFrom(n0).Reclaimed == before {
		if time.Now().After(deadline) {
			return 0, 0, false
		}
		time.Sleep(50 * time.Microsecond)
	}
	detect = time.Since(crashAt)
	r.waitHandles(hs)
	complete = time.Since(crashAt)

	r.f.Node(victim).Restart()
	r.s.RebootNode(victim)
	return detect, complete, true
}

// waitStarted blocks until node id has begun executing a task beyond
// count s0 — the guarantee that a crash right now lands mid-task, so the
// victim holds a lease the recovery path under test must reclaim.
func (r *memRack) waitStarted(id int, s0 uint64) bool {
	deadline := time.Now().Add(memWaitTimeout)
	for r.started[id].Load() == s0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Microsecond)
	}
	return true
}

// checkExactlyOnce audits the mode's entire task history after all
// rounds: the scheduler ledger balances and every DoneCell holds exactly
// 1 despite crashes mid-task and reclaim re-dispatch.
func (r *memRack) checkExactlyOnce(res *Result) bool {
	n0 := r.f.Node(0)
	r.s.Drain(n0)
	st := r.s.StatsFrom(n0)
	bad := 0
	for i := uint64(0); i < r.taskSeq; i++ {
		if n0.AtomicLoad64(r.doneBase+fabric.GPtr(i*8)) != 1 {
			bad++
		}
	}
	mode := "lease-expiry baseline"
	if r.tb != nil {
		mode = "membership"
	}
	res.Table.AddRow("invariant", mode, "tasks exactly-once",
		fmt.Sprintf("%d / %d (submitted %d, completed %d, queued %d)",
			r.taskSeq-uint64(bad), r.taskSeq,
			st.Submitted, st.Completed, st.Queued))
	return bad == 0 && st.Submitted == st.Completed && st.Queued == 0
}

func (r *memRack) stop() {
	for _, m := range r.members {
		if m != nil {
			m.Stop()
		}
	}
	r.s.Stop()
}
