package experiments

import (
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/ipc"
	"flacos/internal/metrics"
	"flacos/internal/netstack"
)

// IPCConfig parameterizes ablation D.
type IPCConfig struct {
	Rounds   int
	Payloads []int
}

// DefaultIPC sweeps payload sizes from cache-line to page-plus scale.
func DefaultIPC() IPCConfig {
	return IPCConfig{Rounds: 2000, Payloads: []int{64, 1024, 4096, 16384, 65536}}
}

// IPCAblation compares echo round-trip cost (virtual ns, both endpoints'
// charges summed) across the four transports §3.5 discusses: the TCP
// stack, one-sided RDMA, FlacOS zero-copy shared-buffer IPC, and FlacOS
// migration RPC (no message at all — the caller's thread runs the server
// code).
func IPCAblation(cfg IPCConfig) *Result {
	res := &Result{
		Name:   "Ablation D: IPC transports, echo round trip",
		Table:  metrics.NewTable("payload", "tcp", "rdma", "flacos-ipc", "migration-rpc"),
		Ratios: map[string]float64{},
	}
	for _, size := range cfg.Payloads {
		tcp := echoTCP(size, cfg.Rounds)
		rdma := echoRDMA(size, cfg.Rounds)
		shm := echoIPC(size, cfg.Rounds)
		mig := echoMigration(size, cfg.Rounds)
		res.Table.AddRow(fmt.Sprintf("%dB", size),
			ns(tcp), ns(rdma), ns(shm), ns(mig))
		res.Ratios[fmt.Sprintf("tcp/ipc %dB", size)] = tcp / shm
		res.Ratios[fmt.Sprintf("tcp/migration %dB", size)] = tcp / mig
	}
	return res
}

func newIPCRack() *fabric.Fabric {
	return fabric.New(fabric.Config{
		GlobalSize: 64 << 20,
		Nodes:      2,
		Latency:    fabric.DefaultLatency(),
	})
}

func perOp(f *fabric.Fabric, rounds int) float64 {
	return float64(f.RackStats().VirtualNS) / float64(rounds)
}

func echoTCP(size, rounds int) float64 {
	f := newIPCRack()
	nw := netstack.New(netstack.DefaultTCP())
	l, _ := nw.Listen(f.Node(0), "s:1")
	var srv *netstack.Conn
	done := make(chan struct{})
	go func() { srv, _ = l.Accept(); close(done) }()
	cli, err := nw.Dial(f.Node(1), "s:1")
	if err != nil {
		panic(err)
	}
	<-done
	f.Node(0).ResetStats()
	f.Node(1).ResetStats()
	msg := make([]byte, size)
	buf := make([]byte, size+64)
	for i := 0; i < rounds; i++ {
		cli.Send(msg)
		n, _ := srv.Recv(buf)
		srv.Send(buf[:n])
		cli.Recv(buf)
	}
	return perOp(f, rounds)
}

func echoRDMA(size, rounds int) float64 {
	f := newIPCRack()
	r := netstack.NewRDMA(netstack.DefaultRDMA())
	reqMR := netstack.NewMemoryRegion(size + 64)
	respMR := netstack.NewMemoryRegion(size + 64)
	client := f.Node(1)
	msg := make([]byte, size)
	buf := make([]byte, size)
	for i := 0; i < rounds; i++ {
		// One-sided RPC: write the request into the server's region, the
		// server-side CPU is bypassed (that is RDMA's selling point), then
		// read the response back.
		r.Write(client, reqMR, 0, msg)
		r.Read(client, respMR, 0, buf)
	}
	return perOp(f, rounds)
}

func echoIPC(size, rounds int) float64 {
	f := newIPCRack()
	sb := ipc.NewSwitchboard(f, f.Node(0), ipc.Config{
		MaxConns: 2, MaxListeners: 1, RingSlots: 8, MsgMax: uint64(size) + 64,
	})
	l, _ := sb.Endpoint(f.Node(0)).Bind("echo")
	var srv *ipc.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv = l.Accept() }()
	cli, err := sb.Endpoint(f.Node(1)).Connect("echo")
	if err != nil {
		panic(err)
	}
	wg.Wait()
	f.Node(0).ResetStats()
	f.Node(1).ResetStats()
	msg := make([]byte, size)
	buf := make([]byte, size+64)
	for i := 0; i < rounds; i++ {
		cli.Send(msg)
		n, _ := srv.Recv(buf)
		srv.Send(buf[:n])
		cli.Recv(buf)
	}
	return perOp(f, rounds)
}

func echoMigration(size, rounds int) float64 {
	f := newIPCRack()
	tbl := ipc.NewServiceTable(f)
	tbl.Register("echo", func(n *fabric.Node, req []byte) []byte { return req })
	client := f.Node(1)
	msg := make([]byte, size)
	for i := 0; i < rounds; i++ {
		if _, err := tbl.Call(client, "echo", msg); err != nil {
			panic(err)
		}
	}
	return perOp(f, rounds)
}
