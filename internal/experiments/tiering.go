package experiments

import (
	"encoding/binary"
	"fmt"
	"sync"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
	"flacos/internal/loadgen"
	"flacos/internal/memsys"
	"flacos/internal/metrics"
	"flacos/internal/tiering"
)

// TieringConfig parameterizes the hotness-tiered placement experiment.
type TieringConfig struct {
	// Nodes is the rack size (one accessor worker per node).
	Nodes int
	// SpanPages is the mapped span, in pages; must be a power of two.
	// The full configuration maps over a million pages so tier placement
	// is a capacity problem, not a cache curiosity.
	SpanPages int
	// Ops is the total measured page accesses per phase.
	Ops int
	// Rounds splits Ops into barriered rounds; the daemon steps once per
	// round boundary, on deterministic virtual time.
	Rounds int
	// Skew is the Zipfian exponent of the page-popularity distribution.
	Skew float64
	// HomeFrac is the probability a page's round is served by its home
	// node (the page's dominant accessor); the rest of the rounds go to a
	// random other node. Accessor choice is per (page, round), so one
	// round never has two nodes fighting over a page — migration churn
	// comes from round-to-round accessor changes, as in a real scheduler.
	HomeFrac float64
	// ReadFrac is the per-op probability of a read (vs a write).
	ReadFrac float64
	// WarmFrac sizes the premium ("warm") global tier as a fraction of the
	// span. The static baseline keeps an address-ordered WarmFrac slice of
	// the span warm; the daemon phase gets the same capacity as its warm
	// budget and must EARN better placement by observing access heat.
	WarmFrac float64
	// LocalPagesPerNode is the daemon's node-local DRAM budget per node.
	LocalPagesPerNode int
	// MaxMovesPerStep bounds the daemon's per-step migration batch.
	MaxMovesPerStep int
	// LoadFactors are the open-loop offered loads, as fractions of the
	// daemon phase's measured capacity. Factors <= 0.8 gate on achieved
	// >= 0.95x offered; factors > 1 exist to show the saturation knee.
	LoadFactors []float64
	// Gate is the daemon/static speedup the experiment must reach.
	Gate float64
	// Seed drives every stream; same seed, same bits out.
	Seed uint64
}

// DefaultTiering is the acceptance configuration: 4 nodes, a 1M-page
// (4 GiB) span, 3M accesses at Zipf 0.99, speedup gate 1.3x.
func DefaultTiering() TieringConfig {
	return TieringConfig{
		Nodes:             4,
		SpanPages:         1 << 20,
		Ops:               3_000_000,
		Rounds:            24,
		Skew:              0.99,
		HomeFrac:          0.95,
		ReadFrac:          0.7,
		WarmFrac:          0.25,
		LocalPagesPerNode: 24576,
		MaxMovesPerStep:   16384,
		LoadFactors:       []float64{0.5, 0.8, 1.2},
		Gate:              1.3,
		Seed:              1,
	}
}

// tierOp is one generated access.
type tierOp struct {
	page  uint32
	write bool
}

// tierPlan is the pre-generated workload both phases replay: per round,
// per node, the access list. Generated once, single-threaded, so the two
// phases run the IDENTICAL op sequence and differ only in placement.
type tierPlan struct {
	rounds  [][][]tierOp
	perNode []int // total ops per node
	total   int
}

const tierRecordBytes = 64

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// tierHome is a page's home node: its dominant accessor across the run.
func tierHome(cfg *TieringConfig, page uint32) int {
	return int(mix64(uint64(page)^cfg.Seed*0x9E3779B97F4A7C15) % uint64(cfg.Nodes))
}

// tierAccessor picks the ONE node that serves page's accesses in round r.
func tierAccessor(cfg *TieringConfig, page uint32, round int) int {
	home := tierHome(cfg, page)
	h := mix64(uint64(page)<<24 ^ uint64(round)*0x100000001b3 ^ cfg.Seed)
	if float64(h&0xFFFFF)/float64(1<<20) < cfg.HomeFrac || cfg.Nodes == 1 {
		return home
	}
	return (home + 1 + int((h>>24)%uint64(cfg.Nodes-1))) % cfg.Nodes
}

// tierPermute maps a Zipf rank to a page number bijectively (odd
// multiplier over a power-of-two span), so page ADDRESS order carries no
// hotness information — the static baseline's address-ordered warm set is
// a fair, uninformed 25% sample, not an accidental oracle.
func tierPermute(rank, span int) uint32 {
	return uint32((uint64(rank) * 0x9E3779B97F4A7C15) & uint64(span-1))
}

func generateTierPlan(cfg *TieringConfig) *tierPlan {
	zipf := loadgen.NewZipf(loadgen.NewRand(cfg.Seed), cfg.SpanPages, cfg.Skew)
	rnd := loadgen.NewRand(cfg.Seed + 1)
	perRound := cfg.Ops / cfg.Rounds
	p := &tierPlan{perNode: make([]int, cfg.Nodes)}
	for r := 0; r < cfg.Rounds; r++ {
		byNode := make([][]tierOp, cfg.Nodes)
		for i := 0; i < perRound; i++ {
			page := tierPermute(zipf.Next(), cfg.SpanPages)
			node := tierAccessor(cfg, page, r)
			byNode[node] = append(byNode[node], tierOp{page: page, write: rnd.Float64() >= cfg.ReadFrac})
			p.perNode[node]++
			p.total++
		}
		p.rounds = append(p.rounds, byNode)
	}
	return p
}

// tierPhase is one placement policy's measured run.
type tierPhase struct {
	daemon bool

	makespanNS    uint64
	opsPerSec     float64
	meanServiceNS []uint64

	stale, torn, lost int
	migrations        uint64
	dstats            tiering.Stats
	census            [4]int // final page count per memsys.Tier
}

func (p *tierPhase) mode() string {
	if p.daemon {
		return "daemon"
	}
	return "static"
}

func (p *tierPhase) violations() int { return p.stale + p.torn + p.lost }

// replayOps expands the phase's measured service profile into an open-loop
// Poisson schedule at the offered load (the redisscale methodology).
func (p *tierPhase) replayOps(cfg *TieringConfig, offered float64, total int) []loadgen.Op {
	if offered <= 0 || total == 0 {
		return nil
	}
	arr := loadgen.NewArrivals(cfg.Seed+7777, offered)
	ops := make([]loadgen.Op, total)
	for i := range ops {
		srv := i % cfg.Nodes
		ops[i] = loadgen.Op{ArrivalNS: arr.Next(), Server: srv, ServiceNS: p.meanServiceNS[srv]}
	}
	return ops
}

// tierRecord builds the page's 64-byte record: 8 words, every one the
// page's current sequence number. Cross-node line transfers are atomic at
// word granularity, and no two nodes ever access a page in the same round,
// so a correct run reads records whose every word equals the page's shadow
// sequence — anything else is a stale or torn read, counted exactly.
func tierRecord(buf []byte, seq uint64) {
	for w := 0; w < tierRecordBytes; w += 8 {
		binary.LittleEndian.PutUint64(buf[w:], seq)
	}
}

// checkTierRecord classifies one read record against the expected seq:
// 0 = intact, 1 = stale (uniform but wrong seq), 2 = torn (mixed words).
func checkTierRecord(buf []byte, want uint64) int {
	w0 := binary.LittleEndian.Uint64(buf)
	uniform := true
	for w := 8; w < tierRecordBytes; w += 8 {
		if binary.LittleEndian.Uint64(buf[w:]) != w0 {
			uniform = false
			break
		}
	}
	switch {
	case uniform && w0 == want:
		return 0
	case uniform:
		return 1
	default:
		return 2
	}
}

const tierBaseVA = uint64(4) << 30

func tierVA(page uint32) uint64 { return tierBaseVA + uint64(page)*memsys.PageSize }

// runTierPhase builds a fresh rack, lays out the identical initial
// placement (whole span faulted warm, then everything outside the
// address-ordered warm set demoted cold), replays the plan, and audits.
// Determinism chain: unlimited fabric caches (no eviction heuristics),
// TLBs sized past the span (no arbitrary map eviction), one accessor per
// (page, round), pre-generated op streams, and daemon decisions that are
// sorted at every stage — same seed, same bits, run after run.
func runTierPhase(cfg *TieringConfig, plan *tierPlan, daemonOn bool) *tierPhase {
	span := cfg.SpanPages
	nodes := cfg.Nodes
	warmPages := int(cfg.WarmFrac * float64(span))
	arenaBytes := uint64(48<<20) + uint64(span)*32
	// Frame pool + arena + per-node radix page tables (the last grow with
	// both span and rack size) + fixed slack for everything else.
	ptBytes := uint64(nodes) * uint64(span) * 32
	f := fabric.New(fabric.Config{
		GlobalSize:         uint64(span+65536)*memsys.PageSize + arenaBytes + ptBytes + 64<<20,
		Nodes:              nodes,
		CacheCapacityLines: -1,
		Latency:            fabric.DefaultLatency(),
	})
	framePool := memsys.NewGlobalFrames(f, uint64(span+65536))
	arena := alloc.NewArena(f, arenaBytes)
	sp := memsys.NewSpace(f, 1, framePool, arena.NodeAllocator(f.Node(0), 0), 4096)
	mmus := make([]*memsys.MMU, nodes)
	for n := 0; n < nodes; n++ {
		mmus[n] = sp.Attach(f.Node(n), arena.NodeAllocator(f.Node(n), 0),
			memsys.NewLocalStore(f.Node(n)), span+16)
	}
	if err := mmus[0].MMap(tierBaseVA, uint64(span), memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		panic(err)
	}

	// Prefault every page with seq 1 from its home node, then demote the
	// span's tail to the cold tier: pages [0, warmPages) are the static
	// policy's entire placement decision. All outside the measurement.
	shadow := make([]uint64, span)
	var rec [tierRecordBytes]byte
	tierRecord(rec[:], 1)
	for p := 0; p < span; p++ {
		if err := mmus[tierHome(cfg, uint32(p))].Write(tierVA(uint32(p)), rec[:]); err != nil {
			panic(err)
		}
		shadow[p] = 1
	}
	const demoteChunk = 4096
	for lo := warmPages; lo < span; lo += demoteChunk {
		hi := lo + demoteChunk
		if hi > span {
			hi = span
		}
		vpns := make([]uint64, 0, hi-lo)
		for p := lo; p < hi; p++ {
			vpns = append(vpns, tierVA(uint32(p))>>memsys.PageShift)
		}
		if got := mmus[0].DemoteToColdBatch(vpns); len(got) != len(vpns) {
			panic(fmt.Sprintf("tiering: initial demote moved %d/%d pages", len(got), len(vpns)))
		}
	}

	var d *tiering.Daemon
	if daemonOn {
		// Slow decay gives the tracker ~4 rounds of memory (steady-state
		// heat of an r-hits/round page is 4r), so intermittently-hit tail
		// pages hold a stable heat instead of fading to zero and churning
		// in and out of premium capacity against same-rate peers. The
		// thresholds are the same access rates as the daemon defaults
		// under their faster decay: promote at ~1 hit/round, pin local at
		// ~4 hits/round on the dominant node.
		d = tiering.New(sp, mmus, tiering.Config{
			Decay:            0.75,
			PromoteHeat:      4,
			LocalHeat:        16,
			LocalBudgetPages: cfg.LocalPagesPerNode,
			WarmBudgetPages:  warmPages,
			MaxMovesPerStep:  cfg.MaxMovesPerStep,
		}, nil)
		for p := 0; p < span; p++ {
			vpn := tierVA(uint32(p)) >> memsys.PageShift
			if p < warmPages {
				d.Prime(vpn, memsys.TierWarm, -1)
			} else {
				d.Prime(vpn, memsys.TierCold, -1)
			}
		}
		d.Attach()
		defer d.Detach()
	}

	ph := &tierPhase{daemon: daemonOn, meanServiceNS: make([]uint64, nodes)}
	before := make([]fabric.NodeStatsSnapshot, nodes)
	for n := range before {
		before[n] = f.Node(n).Stats()
	}

	// Measured rounds: one goroutine per node replays its list; violations
	// are exact because each page has exactly one accessor per round and
	// tier moves happen only at the barrier.
	viols := make([][2]int, nodes) // per node: stale, torn
	for r := 0; r < cfg.Rounds; r++ {
		var wg sync.WaitGroup
		for n := 0; n < nodes; n++ {
			ops := plan.rounds[r][n]
			if len(ops) == 0 {
				continue
			}
			wg.Add(1)
			go func(n int, ops []tierOp) {
				defer wg.Done()
				m := mmus[n]
				var buf [tierRecordBytes]byte
				for _, op := range ops {
					if op.write {
						seq := shadow[op.page] + 1
						tierRecord(buf[:], seq)
						if err := m.Write(tierVA(op.page), buf[:]); err != nil {
							panic(err)
						}
						shadow[op.page] = seq
					} else {
						if err := m.Read(tierVA(op.page), buf[:]); err != nil {
							panic(err)
						}
						switch checkTierRecord(buf[:], shadow[op.page]) {
						case 1:
							viols[n][0]++
						case 2:
							viols[n][1]++
						}
					}
				}
			}(n, ops)
		}
		wg.Wait()
		if d != nil {
			d.Step()
		}
	}

	after := make([]fabric.NodeStatsSnapshot, nodes)
	for n := range after {
		after[n] = f.Node(n).Stats()
		delta := after[n].Delta(before[n])
		if delta.VirtualNS > ph.makespanNS {
			ph.makespanNS = delta.VirtualNS
		}
		if plan.perNode[n] > 0 {
			ph.meanServiceNS[n] = delta.VirtualNS / uint64(plan.perNode[n])
		}
		if ph.meanServiceNS[n] == 0 {
			ph.meanServiceNS[n] = 1
		}
	}
	if ph.makespanNS > 0 {
		ph.opsPerSec = float64(plan.total) / (float64(ph.makespanNS) / 1e9)
	}
	for n := range viols {
		ph.stale += viols[n][0]
		ph.torn += viols[n][1]
	}
	for _, m := range mmus {
		ph.migrations += m.Stats().Migrations
	}
	if d != nil {
		ph.dstats = d.Stats()
	}

	// Post-measurement audit: the final tier census, then every page read
	// back against its shadow sequence — a write that vanished in a tier
	// move (or a page serving stale content) lands here as lost.
	for p := 0; p < span; p++ {
		tier, _ := mmus[0].TierOf(tierVA(uint32(p)) >> memsys.PageShift)
		ph.census[tier]++
	}
	var buf [tierRecordBytes]byte
	for p := 0; p < span; p++ {
		if err := mmus[tierHome(cfg, uint32(p))].Read(tierVA(uint32(p)), buf[:]); err != nil {
			panic(err)
		}
		if checkTierRecord(buf[:], shadow[p]) != 0 {
			ph.lost++
		}
	}
	return ph
}

// Tiering measures what the rack-wide tiering daemon is worth: the same
// Zipfian multi-node workload over a multi-million-page span runs twice —
// once on a static placement (an uninformed warm set, everything else in
// the cold capacity tier) and once with internal/tiering's daemon closing
// the placement loop from MMU access samples. Both phases spend identical
// premium capacity; only the placement policy differs.
//
//   - Placement: the daemon promotes sustained-hot pages into their
//     dominant accessor's node-local DRAM, keeps the warm tier packed
//     with observed-hot (not address-lucky) pages, and demotes faded
//     pages back to cold — under promote/demote hysteresis, per-tier
//     budgets and a bounded per-step move batch.
//   - Integrity: every page carries a sequence-stamped record audited on
//     every read and again in a full-span sweep after the run; a tier
//     move that loses a write, serves stale bytes, or tears a record is
//     counted, and the gate tolerates exactly zero.
//   - Open loop: the daemon phase's measured per-node service times are
//     replayed against Poisson arrivals at fractions of capacity for
//     honest latency under load and the saturation knee.
//
// The returned bool reports failure: any integrity violation, a
// daemon/static speedup below Gate, a daemon that never actually promoted
// or demoted anything, or low-load achieved throughput under 0.95x offered.
func Tiering(cfg TieringConfig) (*Result, bool) {
	res := &Result{
		Name:   "Hotness-tiered memory: daemon placement vs static tiers",
		Table:  metrics.NewTable("phase", "config", "metric", "value"),
		Ratios: map[string]float64{},
	}
	plan := generateTierPlan(&cfg)

	static := runTierPhase(&cfg, plan, false)
	daemon := runTierPhase(&cfg, plan, true)

	speedup := 0.0
	if daemon.makespanNS > 0 {
		speedup = float64(static.makespanNS) / float64(daemon.makespanNS)
	}
	for _, ph := range []*tierPhase{static, daemon} {
		res.Table.AddRow("placement", ph.mode(), "makespan | ops/s (virtual)",
			fmt.Sprintf("%s | %.0f", ns(float64(ph.makespanNS)), ph.opsPerSec))
		res.Table.AddRow("placement", ph.mode(), "final tiers local/warm/cold",
			fmt.Sprintf("%d / %d / %d", ph.census[memsys.TierLocal], ph.census[memsys.TierWarm], ph.census[memsys.TierCold]))
		res.Table.AddRow("integrity", ph.mode(), "stale/torn/lost",
			fmt.Sprintf("%d / %d / %d", ph.stale, ph.torn, ph.lost))
		res.Table.AddRow("placement", ph.mode(), "demand migrations",
			fmt.Sprintf("%d", ph.migrations))
	}
	ds := daemon.dstats
	res.Table.AddRow("placement", "daemon", "promoted local/warm",
		fmt.Sprintf("%d / %d", ds.PromotedLocal, ds.PromotedWarm))
	res.Table.AddRow("placement", "daemon", "demoted warm/cold",
		fmt.Sprintf("%d / %d", ds.DemotedWarm, ds.DemotedCold))
	res.Table.AddRow("placement", "daemon", "displaced | failed moves",
		fmt.Sprintf("%d | %d", ds.Displaced, ds.FailedMoves))
	res.Table.AddRow("placement", "speedup", "daemon/static",
		fmt.Sprintf("%.2fx", speedup))
	res.Ratios["daemon/static makespan speedup"] = speedup

	// Open-loop replay of the daemon phase's capacity.
	lowLoadOK := true
	sweep := make([]loadgen.Row, 0, len(cfg.LoadFactors))
	for _, fac := range cfg.LoadFactors {
		offered := fac * daemon.opsPerSec
		row := loadgen.MeasureRow(cfg.Nodes, offered, daemon.replayOps(&cfg, offered, plan.total), cfg.Nodes)
		sweep = append(sweep, row)
		res.Table.AddRow("open-loop", fmt.Sprintf("%.1fx capacity", fac),
			"achieved ops/s | p50 | p99",
			fmt.Sprintf("%.0f | %s | %s", row.AchievedOpsPerSec, ns(float64(row.P50NS)), ns(float64(row.P99NS))))
		if fac <= 0.8 && row.AchievedOpsPerSec < 0.95*offered {
			lowLoadOK = false
		}
	}
	knee := "none"
	if k := loadgen.Knee(sweep, 0.9); k >= 0 {
		knee = fmt.Sprintf("%.1fx capacity", cfg.LoadFactors[k])
	}
	res.Table.AddRow("open-loop", "sweep", "saturation knee", knee)

	res.Bench = &Bench{
		Name:      "tiering",
		OpsPerSec: daemon.opsPerSec,
		P50NS:     float64(sweep[0].P50NS),
		P99NS:     float64(sweep[0].P99NS),
		Rows:      sweep,
	}

	violations := static.violations() + daemon.violations()
	moved := ds.PromotedLocal > 0 && ds.PromotedWarm > 0 && ds.DemotedCold > 0
	failed := violations > 0 || speedup < cfg.Gate || !moved || !lowLoadOK
	return res, failed
}
