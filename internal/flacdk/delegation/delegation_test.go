package delegation

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 4 << 20, Nodes: nodes})
}

func TestEchoAcrossNodes(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Serve(f.Node(0), func(op uint32, req, resp []byte) (int, uint32) {
			return copy(resp, req), op * 2
		})
	}()
	c := d.Client(f.Node(1), 0)
	resp := make([]byte, PayloadMax)
	n, status := c.Call(21, []byte("hello delegation"), resp)
	if string(resp[:n]) != "hello delegation" || status != 42 {
		t.Fatalf("echo = %q status %d", resp[:n], status)
	}
	d.Stop()
	wg.Wait()
}

func TestDelegatedCounterExactUnderConcurrency(t *testing.T) {
	// The owner keeps the counter in plain local memory — no atomics, no
	// locks, no cache maintenance on the data — and it still counts exactly,
	// because delegation serializes all access through the owner.
	const clients, perClient = 4, 500
	f := rack(t, 2)
	d := NewDomain(f, clients)
	var counter uint64 // owner-local state
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Serve(f.Node(0), func(op uint32, req, resp []byte) (int, uint32) {
			counter += uint64(op)
			binary.LittleEndian.PutUint64(resp, counter)
			return 8, 0
		})
	}()
	var cwg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cwg.Add(1)
		go func(slot int) {
			defer cwg.Done()
			c := d.Client(f.Node(1), slot)
			resp := make([]byte, PayloadMax)
			for j := 0; j < perClient; j++ {
				c.Call(1, nil, resp)
			}
		}(i)
	}
	cwg.Wait()
	d.Stop()
	wg.Wait()
	if counter != clients*perClient {
		t.Fatalf("counter = %d, want %d", counter, clients*perClient)
	}
}

func TestDelegatedMapPartition(t *testing.T) {
	f := rack(t, 3)
	d := NewDomain(f, 2)
	m := map[string]string{} // owner-local partition
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Serve(f.Node(0), func(op uint32, req, resp []byte) (int, uint32) {
			switch op {
			case 1: // put: klen byte, key, value
				klen := int(req[0])
				m[string(req[1:1+klen])] = string(req[1+klen:])
				return 0, 0
			case 2: // get: key
				v, ok := m[string(req)]
				if !ok {
					return 0, 1
				}
				return copy(resp, v), 0
			}
			return 0, 2
		})
	}()
	put := func(c *Client, k, v string) {
		req := append([]byte{byte(len(k))}, k...)
		req = append(req, v...)
		c.Call(1, req, make([]byte, PayloadMax))
	}
	c1 := d.Client(f.Node(1), 0)
	c2 := d.Client(f.Node(2), 1)
	put(c1, "k1", "from-node-1")
	put(c2, "k2", "from-node-2")
	resp := make([]byte, PayloadMax)
	n, st := c2.Call(2, []byte("k1"), resp)
	if st != 0 || string(resp[:n]) != "from-node-1" {
		t.Fatalf("get k1 = %q st %d", resp[:n], st)
	}
	n, st = c1.Call(2, []byte("missing"), resp)
	if st != 1 || n != 0 {
		t.Fatalf("get missing: n=%d st=%d", n, st)
	}
	d.Stop()
	wg.Wait()
}

func TestClientSlotBounds(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 2)
	for _, slot := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("slot %d should panic", slot)
				}
			}()
			d.Client(f.Node(0), slot)
		}()
	}
}

func TestOversizedRequestPanics(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 1)
	c := d.Client(f.Node(0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized request should panic")
		}
	}()
	c.Call(1, make([]byte, PayloadMax+1), nil)
}

func TestZeroSlotDomainPanics(t *testing.T) {
	f := rack(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewDomain(0) should panic")
		}
	}()
	NewDomain(f, 0)
}

func TestManySequentialCallsSameSlot(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.Serve(f.Node(0), func(op uint32, req, resp []byte) (int, uint32) {
			return copy(resp, fmt.Sprintf("r%d", op)), 0
		})
	}()
	c := d.Client(f.Node(1), 0)
	resp := make([]byte, PayloadMax)
	for i := uint32(0); i < 200; i++ {
		n, _ := c.Call(i, nil, resp)
		if string(resp[:n]) != fmt.Sprintf("r%d", i) {
			t.Fatalf("call %d got %q", i, resp[:n])
		}
	}
	d.Stop()
	wg.Wait()
}
