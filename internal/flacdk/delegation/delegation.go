// Package delegation implements FlacDK's delegation-based synchronization
// (paper §3.2), in the style of ffwd/flat combining: data is partitioned,
// each partition has an owner node, and other nodes access the partition by
// posting requests into per-client slots in global memory that the owner
// polls and executes on their behalf.
//
// The owner touches the partition's data only in its own local memory, so
// the data structure itself needs no cross-node synchronization at all.
// Polling is cheap on the non-coherent fabric because the per-client
// request sequence words are PACKED eight to a cache line (the ffwd trick):
// one invalidate + one line fetch observes eight clients at once. Request
// payloads travel as plain cached data published with write-back; only the
// publish words (request sequence, response sequence) use fabric atomics.
//
// Each client slot is owned by exactly one caller at a time, so the
// sequence-number protocol needs no CAS: the client bumps its slot's
// request sequence, the server echoes it in the response sequence.
package delegation

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"flacos/internal/fabric"
)

// PayloadMax is the largest request or response payload, one cache line.
const PayloadMax = fabric.LineSize

const wordsPerLine = fabric.LineSize / fabric.WordSize

// per-slot layout in the slot region:
//
//	line 0: request line  (word 0: op|len, rest: payload start)... payload
//	line 1: request payload (PayloadMax bytes)
//	line 2: response control (word 0: seq, word 1: status|len)
//	line 3: response payload
const slotSize = 4 * fabric.LineSize

// Handler executes one delegated operation against the partition's local
// data. It reads req, writes its reply into resp (capacity PayloadMax), and
// returns the reply length and a status code the caller receives verbatim.
type Handler func(op uint32, req []byte, resp []byte) (respLen int, status uint32)

// Domain is one delegation domain: a slot array in global memory serving
// one partition. Create it with NewDomain, attach the owner with Serve (or
// Server/ServeOnce), and attach callers with Client.
type Domain struct {
	fab     *fabric.Fabric
	slots   int
	seqBase fabric.GPtr // packed request sequence words, 8 per line
	base    fabric.GPtr // slot region
	stopped atomic.Bool
}

// NewDomain reserves global memory for numSlots client slots.
func NewDomain(f *fabric.Fabric, numSlots int) *Domain {
	if numSlots <= 0 {
		panic("delegation: numSlots must be positive")
	}
	seqLines := (numSlots + wordsPerLine - 1) / wordsPerLine
	return &Domain{
		fab:     f,
		slots:   numSlots,
		seqBase: f.Reserve(uint64(seqLines)*fabric.LineSize, fabric.LineSize),
		base:    f.Reserve(uint64(numSlots)*slotSize, fabric.LineSize),
	}
}

// Slots returns the number of client slots in the domain.
func (d *Domain) Slots() int { return d.slots }

func (d *Domain) reqSeqG(s int) fabric.GPtr  { return d.seqBase.Add(uint64(s) * fabric.WordSize) }
func (d *Domain) reqMetaG(s int) fabric.GPtr { return d.base.Add(uint64(s) * slotSize) }
func (d *Domain) reqPayG(s int) fabric.GPtr  { return d.reqMetaG(s).Add(fabric.LineSize) }
func (d *Domain) rspSeqG(s int) fabric.GPtr  { return d.reqMetaG(s).Add(2 * fabric.LineSize) }
func (d *Domain) rspMetaG(s int) fabric.GPtr { return d.reqMetaG(s).Add(2*fabric.LineSize + 8) }
func (d *Domain) rspPayG(s int) fabric.GPtr  { return d.reqMetaG(s).Add(3 * fabric.LineSize) }

// Stop makes the owner's Serve loop return after its current sweep.
func (d *Domain) Stop() { d.stopped.Store(true) }

// Server is the owner's polling state: the last sequence served per slot.
type Server struct {
	d          *Domain
	node       *fabric.Node
	handler    Handler
	lastServed []uint64
	req, resp  []byte
}

// Server binds the owner node's serving state.
func (d *Domain) Server(n *fabric.Node, handler Handler) *Server {
	return &Server{
		d:          d,
		node:       n,
		handler:    handler,
		lastServed: make([]uint64, d.slots),
		req:        make([]byte, PayloadMax),
		resp:       make([]byte, PayloadMax),
	}
}

// ServeOnce sweeps every slot once, executing pending requests, and
// returns how many it served. One invalidate + line fetch of the packed
// sequence region observes every client's publish word.
func (sv *Server) ServeOnce() int {
	d, n := sv.d, sv.node
	seqLines := uint64((d.slots+wordsPerLine-1)/wordsPerLine) * fabric.LineSize
	n.InvalidateRange(d.seqBase, seqLines)
	served := 0
	for s := 0; s < d.slots; s++ {
		seq := n.Load64(d.reqSeqG(s)) // plain load: freshly invalidated
		if seq == sv.lastServed[s] {
			continue
		}
		// Fetch the request line (meta + inline payload reference).
		n.InvalidateRange(d.reqMetaG(s), fabric.LineSize)
		meta := n.Load64(d.reqMetaG(s))
		op := uint32(meta >> 32)
		reqLen := int(uint32(meta))
		if reqLen > 0 {
			n.InvalidateRange(d.reqPayG(s), uint64(reqLen))
			n.Read(d.reqPayG(s), sv.req[:reqLen])
		}
		respLen, status := sv.handler(op, sv.req[:reqLen], sv.resp)
		if respLen > PayloadMax {
			panic("delegation: handler response exceeds PayloadMax")
		}
		if respLen > 0 {
			n.Write(d.rspPayG(s), sv.resp[:respLen])
			n.WriteBackRange(d.rspPayG(s), uint64(respLen))
		}
		n.AtomicStore64(d.rspMetaG(s), uint64(status)<<32|uint64(uint32(respLen)))
		n.AtomicStore64(d.rspSeqG(s), seq)
		sv.lastServed[s] = seq
		served++
	}
	return served
}

// Serve runs the owner loop on node n, polling every slot and executing
// pending requests with handler, until Stop is called. It is the partition
// owner's dedicated "server thread" in the delegation design.
func (d *Domain) Serve(n *fabric.Node, handler Handler) {
	sv := d.Server(n, handler)
	for !d.stopped.Load() {
		if sv.ServeOnce() == 0 {
			runtime.Gosched()
		}
	}
}

// Client is one caller's exclusive binding to a slot. A Client must not be
// used concurrently from multiple goroutines (give each its own slot).
type Client struct {
	d    *Domain
	n    *fabric.Node
	slot int
	seq  uint64
}

// Client binds node n to slot (0 <= slot < Slots()).
func (d *Domain) Client(n *fabric.Node, slot int) *Client {
	if slot < 0 || slot >= d.slots {
		panic(fmt.Sprintf("delegation: slot %d out of range [0,%d)", slot, d.slots))
	}
	return &Client{d: d, n: n, slot: slot}
}

// Post publishes one operation into the client's slot without waiting:
// meta and payload go out as one plain write-back burst, then the packed
// sequence word publishes with a fabric atomic.
func (c *Client) Post(op uint32, req []byte) {
	if len(req) > PayloadMax {
		panic(fmt.Sprintf("delegation: request %d exceeds max %d", len(req), PayloadMax))
	}
	d, n, s := c.d, c.n, c.slot
	c.seq++
	n.Store64(d.reqMetaG(s), uint64(op)<<32|uint64(uint32(len(req))))
	if len(req) > 0 {
		n.Write(d.reqPayG(s), req)
	}
	n.WriteBackRange(d.reqMetaG(s), 2*fabric.LineSize)
	n.AtomicStore64(d.reqSeqG(s), c.seq)
}

// TryComplete checks whether the posted operation's response has arrived;
// if so it copies the reply into resp and returns done=true.
func (c *Client) TryComplete(resp []byte) (respLen int, status uint32, done bool) {
	d, n, s := c.d, c.n, c.slot
	if n.AtomicLoad64(d.rspSeqG(s)) != c.seq {
		return 0, 0, false
	}
	meta := n.AtomicLoad64(d.rspMetaG(s))
	status = uint32(meta >> 32)
	respLen = int(uint32(meta))
	if respLen > 0 {
		n.InvalidateRange(d.rspPayG(s), uint64(respLen))
		n.Read(d.rspPayG(s), resp[:respLen])
	}
	return respLen, status, true
}

// Call posts one operation and spins until the owner's response arrives.
// resp (capacity >= PayloadMax) receives the reply; Call returns the reply
// length and the handler's status code.
func (c *Client) Call(op uint32, req []byte, resp []byte) (respLen int, status uint32) {
	c.Post(op, req)
	for {
		n, st, done := c.TryComplete(resp)
		if done {
			return n, st
		}
		runtime.Gosched()
	}
}
