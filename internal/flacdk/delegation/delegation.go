// Package delegation implements FlacDK's delegation-based synchronization
// (paper §3.2), in the style of ffwd/flat combining: data is partitioned,
// each partition has an owner node, and other nodes access the partition by
// posting requests into per-client slots in global memory that the owner
// polls and executes on their behalf.
//
// The owner touches the partition's data only in its own local memory, so
// the data structure itself needs no cross-node synchronization at all.
// Polling is cheap on the non-coherent fabric because the per-client
// request sequence words are PACKED eight to a cache line (the ffwd trick):
// one invalidate + one line fetch observes eight clients at once. Request
// payloads travel as plain cached data published with write-back.
//
// Payloads small enough to share the control words' cache line travel
// INLINE: a request up to 56 bytes or a response up to 48 bytes costs ONE
// line transfer in each direction instead of two. Since a delegated op is
// pure protocol overhead against the contended atomics it replaces,
// halving its line traffic is what makes delegation profitable at
// realistic fan-ins; larger payloads spill onto the slot's second line and
// pay the extra transfer only when they must.
//
// Requests and responses live in SEGREGATED regions (all request lines
// contiguous, all response lines contiguous) so that both directions can
// be streamed as single pipelined bursts instead of per-slot round trips:
// a combining owner bulk-fetches the whole request region and publishes a
// whole sweep's replies with one write-back (CollectOnce / FlushReplies),
// and a batching caller posts several requests then flushes them together
// and bulk-fetches its response stripe (ClientGroup).
//
// An inline response shares its cache line with its own sequence word, and
// a line is written home atomically, so inline replies publish with plain
// stores and write-back — a poller snapshots the whole reply or none of
// it. Only two publish points need fabric atomics: the packed request
// sequence word (its line is shared across clients) and a SPILLED
// response's sequence word (its payload crosses lines, so the payload must
// be home before the sequence advances).
//
// Each client slot is owned by exactly one caller at a time, so the
// sequence-number protocol needs no CAS: the client bumps its slot's
// request sequence, the server echoes it in the response sequence.
package delegation

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"

	"flacos/internal/fabric"
)

// PayloadMax is the largest request or response payload, one cache line.
const PayloadMax = fabric.LineSize

const wordsPerLine = fabric.LineSize / fabric.WordSize

// Per-slot layout.
//
// Request region, two lines per slot:
//
//	line 0: word 0: op|len, bytes 8..64: inline payload
//	line 1: spill (payload bytes past reqInlineMax)
//
// Response region, two lines per slot:
//
//	line 0: word 0: seq, word 1: status|len, bytes 16..64: inline payload
//	line 1: spill (payload bytes past rspInlineMax)
const (
	reqSlotSize = 2 * fabric.LineSize
	rspSlotSize = 2 * fabric.LineSize
)

// Inline payload capacities: what fits in the request/response line after
// the control words.
const (
	reqInlineMax = fabric.LineSize - 8
	rspInlineMax = fabric.LineSize - 16
)

// Handler executes one delegated operation against the partition's local
// data. It reads req, writes its reply into resp (capacity PayloadMax), and
// returns the reply length and a status code the caller receives verbatim.
type Handler func(op uint32, req []byte, resp []byte) (respLen int, status uint32)

// Domain is one delegation domain: slot regions in global memory serving
// one partition. Create it with NewDomain, attach the owner with Serve (or
// Server/ServeOnce), and attach callers with Client or ClientGroup.
type Domain struct {
	fab     *fabric.Fabric
	slots   int
	seqBase fabric.GPtr // packed request sequence words, 8 per line
	reqBase fabric.GPtr // request region, 2 lines per slot
	rspBase fabric.GPtr // response region, 2 lines per slot
	stopped atomic.Bool
}

// NewDomain reserves global memory for numSlots client slots.
func NewDomain(f *fabric.Fabric, numSlots int) *Domain {
	if numSlots <= 0 {
		panic("delegation: numSlots must be positive")
	}
	seqLines := (numSlots + wordsPerLine - 1) / wordsPerLine
	return &Domain{
		fab:     f,
		slots:   numSlots,
		seqBase: f.Reserve(uint64(seqLines)*fabric.LineSize, fabric.LineSize),
		reqBase: f.Reserve(uint64(numSlots)*reqSlotSize, fabric.LineSize),
		rspBase: f.Reserve(uint64(numSlots)*rspSlotSize, fabric.LineSize),
	}
}

// Slots returns the number of client slots in the domain.
func (d *Domain) Slots() int { return d.slots }

func (d *Domain) reqSeqG(s int) fabric.GPtr    { return d.seqBase.Add(uint64(s) * fabric.WordSize) }
func (d *Domain) reqMetaG(s int) fabric.GPtr   { return d.reqBase.Add(uint64(s) * reqSlotSize) }
func (d *Domain) reqInlineG(s int) fabric.GPtr { return d.reqMetaG(s).Add(8) }
func (d *Domain) reqSpillG(s int) fabric.GPtr  { return d.reqMetaG(s).Add(fabric.LineSize) }
func (d *Domain) rspSeqG(s int) fabric.GPtr    { return d.rspBase.Add(uint64(s) * rspSlotSize) }
func (d *Domain) rspMetaG(s int) fabric.GPtr   { return d.rspSeqG(s).Add(8) }
func (d *Domain) rspInlineG(s int) fabric.GPtr { return d.rspSeqG(s).Add(16) }
func (d *Domain) rspSpillG(s int) fabric.GPtr  { return d.rspSeqG(s).Add(fabric.LineSize) }

// Stop makes the owner's Serve loop return after its current sweep.
func (d *Domain) Stop() { d.stopped.Store(true) }

// Server is the owner's polling state: the last sequence served per slot.
type Server struct {
	d          *Domain
	node       *fabric.Node
	handler    Handler
	lastServed []uint64
	req, resp  []byte
	seqBuf     []byte
	reqBuf     []byte
	deferred   bool
}

// Server binds the owner node's serving state.
func (d *Domain) Server(n *fabric.Node, handler Handler) *Server {
	return &Server{
		d:          d,
		node:       n,
		handler:    handler,
		lastServed: make([]uint64, d.slots),
		req:        make([]byte, PayloadMax),
		resp:       make([]byte, PayloadMax),
		seqBuf:     make([]byte, uint64((d.slots+wordsPerLine-1)/wordsPerLine)*fabric.LineSize),
		reqBuf:     make([]byte, uint64(d.slots)*reqSlotSize),
	}
}

// scanSeqs refreshes the packed request-sequence region into seqBuf with
// one invalidate and ONE pipelined bulk fetch: observing 8 clients per
// line and streaming the lines is what keeps a wide sweep (many slots)
// from costing a full line round trip per slot.
func (sv *Server) scanSeqs() {
	d, n := sv.d, sv.node
	n.InvalidateRange(d.seqBase, uint64(len(sv.seqBuf)))
	n.Read(d.seqBase, sv.seqBuf)
}

// readRequest fetches slot s's posted request into buf (capacity
// PayloadMax): one invalidate covering the request and spill lines, one
// line fetch for the common inline case, a second only when the payload
// spilled.
func (sv *Server) readRequest(s int, buf []byte) (op uint32, reqLen int) {
	d, n := sv.d, sv.node
	n.InvalidateRange(d.reqMetaG(s), reqSlotSize)
	meta := n.Load64(d.reqMetaG(s))
	op = uint32(meta >> 32)
	reqLen = int(uint32(meta))
	inl := reqLen
	if inl > reqInlineMax {
		inl = reqInlineMax
	}
	if inl > 0 {
		n.Read(d.reqInlineG(s), buf[:inl])
	}
	if reqLen > reqInlineMax {
		n.Read(d.reqSpillG(s), buf[inl:reqLen])
	}
	return op, reqLen
}

// publishReply writes one response. An INLINE reply shares the response
// line with its own sequence word, and a line is written home atomically,
// so the publish needs no fabric atomic at all: plain stores plus one
// single-line write-back, and any poller snapshots either the whole new
// reply or none of it. A SPILLED reply has a cross-line ordering hazard
// (write-back pushes the response line — new seq included — before the
// spill line), so it keeps the two-step protocol: payload lines go home
// first, then the sequence word publishes with a fabric atomic.
func (sv *Server) publishReply(slot int, seq uint64, status uint32, resp []byte) {
	d, n := sv.d, sv.node
	if len(resp) <= rspInlineMax {
		sv.writeReplyLine(slot, seq, status, resp)
		n.WriteBackRange(d.rspSeqG(slot), fabric.LineSize)
		return
	}
	n.Store64(d.rspMetaG(slot), uint64(status)<<32|uint64(uint32(len(resp))))
	n.Write(d.rspInlineG(slot), resp[:rspInlineMax])
	n.Write(d.rspSpillG(slot), resp[rspInlineMax:])
	n.WriteBackRange(d.rspSeqG(slot), 2*fabric.LineSize)
	n.AtomicStore64(d.rspSeqG(slot), seq)
}

// writeReplyLine stages one inline reply — sequence word, status|len, and
// payload — into the slot's response line with plain stores.
func (sv *Server) writeReplyLine(slot int, seq uint64, status uint32, resp []byte) {
	d, n := sv.d, sv.node
	n.Store64(d.rspSeqG(slot), seq)
	n.Store64(d.rspMetaG(slot), uint64(status)<<32|uint64(uint32(len(resp))))
	if len(resp) > 0 {
		n.Write(d.rspInlineG(slot), resp)
	}
}

// ServeOnce sweeps every slot once, executing pending requests, and
// returns how many it served. One invalidate + line fetch of the packed
// sequence region observes every client's publish word.
func (sv *Server) ServeOnce() int {
	sv.scanSeqs()
	served := 0
	for s := 0; s < sv.d.slots; s++ {
		seq := binary.LittleEndian.Uint64(sv.seqBuf[s*8:])
		if seq == sv.lastServed[s] {
			continue
		}
		op, reqLen := sv.readRequest(s, sv.req)
		respLen, status := sv.handler(op, sv.req[:reqLen], sv.resp)
		if respLen > PayloadMax {
			panic("delegation: handler response exceeds PayloadMax")
		}
		sv.publishReply(s, seq, status, sv.resp[:respLen])
		sv.lastServed[s] = seq
		served++
	}
	return served
}

// Request is one pending delegated operation observed by CollectOnce,
// not yet executed or replied to. Payload is a private copy.
type Request struct {
	Slot    int
	Op      uint32
	Seq     uint64
	Payload []byte
}

// CollectOnce sweeps every slot once and appends the pending requests to
// reqs WITHOUT executing them, returning the extended slice. It is the
// gathering half of a combining server: the owner collects a whole sweep's
// requests, coalesces them (one data-structure operation for N requests on
// the same key), and answers each with Reply or ReplyDeferred +
// FlushReplies. Every collected request MUST eventually get a reply; its
// client slot stays blocked until then.
func (sv *Server) CollectOnce(reqs []Request) []Request {
	sv.FlushReplies() // deferred replies must be home before a new sweep
	sv.scanSeqs()
	pending := 0
	for s := 0; s < sv.d.slots; s++ {
		if binary.LittleEndian.Uint64(sv.seqBuf[s*8:]) != sv.lastServed[s] {
			pending++
		}
	}
	if pending == 0 {
		return reqs
	}
	// Dense sweeps fetch the WHOLE request region as one pipelined burst
	// and parse host-side; sparse sweeps fetch per slot. A per-slot fetch
	// is a full line round trip while the bulk fetch streams the region's
	// lines at the pipelined per-line rate (~1/30 of a round trip), so
	// bulk wins once more than ~a sixteenth of the slots are pending.
	bulk := pending*16 > sv.d.slots
	if bulk {
		sv.node.InvalidateRange(sv.d.reqBase, uint64(len(sv.reqBuf)))
		sv.node.Read(sv.d.reqBase, sv.reqBuf)
	}
	for s := 0; s < sv.d.slots; s++ {
		seq := binary.LittleEndian.Uint64(sv.seqBuf[s*8:])
		if seq == sv.lastServed[s] {
			continue
		}
		var op uint32
		var reqLen int
		var pay []byte
		if bulk {
			line := sv.reqBuf[s*reqSlotSize:]
			meta := binary.LittleEndian.Uint64(line)
			op = uint32(meta >> 32)
			reqLen = int(uint32(meta))
			pay = make([]byte, reqLen)
			inl := copy(pay, line[8:8+minInt(reqLen, reqInlineMax)])
			if reqLen > reqInlineMax {
				copy(pay[inl:], line[fabric.LineSize:])
			}
		} else {
			op, reqLen = sv.readRequest(s, sv.req)
			pay = make([]byte, reqLen)
			copy(pay, sv.req[:reqLen])
		}
		sv.lastServed[s] = seq
		reqs = append(reqs, Request{Slot: s, Op: op, Seq: seq, Payload: pay})
	}
	return reqs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Reply publishes one response for a request collected by CollectOnce,
// immediately: the ServeOnce publication protocol.
func (sv *Server) Reply(slot int, seq uint64, status uint32, resp []byte) {
	if len(resp) > PayloadMax {
		panic("delegation: reply exceeds PayloadMax")
	}
	sv.publishReply(slot, seq, status, resp)
}

// ReplyDeferred stages one response with plain stores and NO write-back;
// the caller publishes a whole sweep's staged replies with one
// FlushReplies burst. Each inline reply occupies exactly one
// self-contained line (sequence word included), so the batched burst
// publishes each reply atomically no matter how the lines interleave —
// per-reply ordering machinery buys nothing, and a combining sweep
// amortizes one burst over its whole fan-in. A reply too large to stage
// inline falls back to the immediate ordered publish.
func (sv *Server) ReplyDeferred(slot int, seq uint64, status uint32, resp []byte) {
	if len(resp) > PayloadMax {
		panic("delegation: reply exceeds PayloadMax")
	}
	if len(resp) > rspInlineMax {
		sv.publishReply(slot, seq, status, resp)
		return
	}
	sv.writeReplyLine(slot, seq, status, resp)
	sv.deferred = true
}

// FlushReplies pushes every reply staged by ReplyDeferred home in one
// write-back burst over the response region (only dirty lines pay). No-op
// if nothing is staged.
func (sv *Server) FlushReplies() {
	if !sv.deferred {
		return
	}
	sv.deferred = false
	sv.node.WriteBackRange(sv.d.rspBase, uint64(sv.d.slots)*rspSlotSize)
}

// Serve runs the owner loop on node n, polling every slot and executing
// pending requests with handler, until Stop is called. It is the partition
// owner's dedicated "server thread" in the delegation design.
func (d *Domain) Serve(n *fabric.Node, handler Handler) {
	sv := d.Server(n, handler)
	for !d.stopped.Load() {
		if sv.ServeOnce() == 0 {
			runtime.Gosched()
		}
	}
}

// Client is one caller's exclusive binding to a slot. A Client must not be
// used concurrently from multiple goroutines (give each its own slot).
type Client struct {
	d    *Domain
	n    *fabric.Node
	slot int
	seq  uint64
}

// Client binds node n to slot (0 <= slot < Slots()).
func (d *Domain) Client(n *fabric.Node, slot int) *Client {
	if slot < 0 || slot >= d.slots {
		panic(fmt.Sprintf("delegation: slot %d out of range [0,%d)", slot, d.slots))
	}
	return &Client{d: d, n: n, slot: slot}
}

// Post publishes one operation into the client's slot without waiting:
// meta and payload go out as one plain write-back burst, then the packed
// sequence word publishes with a fabric atomic (its line is shared with
// other clients' sequence words, so a plain write-back could clobber
// theirs).
func (c *Client) Post(op uint32, req []byte) {
	if len(req) > PayloadMax {
		panic(fmt.Sprintf("delegation: request %d exceeds max %d", len(req), PayloadMax))
	}
	d, n, s := c.d, c.n, c.slot
	c.seq++
	n.Store64(d.reqMetaG(s), uint64(op)<<32|uint64(uint32(len(req))))
	inl := len(req)
	if inl > reqInlineMax {
		inl = reqInlineMax
	}
	if inl > 0 {
		n.Write(d.reqInlineG(s), req[:inl])
	}
	lines := uint64(fabric.LineSize)
	if len(req) > reqInlineMax {
		n.Write(d.reqSpillG(s), req[reqInlineMax:])
		lines = 2 * fabric.LineSize
	}
	n.WriteBackRange(d.reqMetaG(s), lines)
	n.AtomicStore64(d.reqSeqG(s), c.seq)
}

// TryComplete checks whether the posted operation's response has arrived;
// if so it copies the reply into resp and returns done=true. The response
// line is fetched fresh each poll (invalidate + plain loads). An inline
// reply travels home as one atomic line write, so a fetch that observes
// the new sequence carries the matching status and payload in the same
// line snapshot; a spilled reply's sequence word is published with a
// fabric atomic only after its payload lines are home.
func (c *Client) TryComplete(resp []byte) (respLen int, status uint32, done bool) {
	d, n, s := c.d, c.n, c.slot
	n.InvalidateRange(d.rspSeqG(s), rspSlotSize)
	if n.Load64(d.rspSeqG(s)) != c.seq {
		return 0, 0, false
	}
	meta := n.Load64(d.rspMetaG(s))
	status = uint32(meta >> 32)
	respLen = int(uint32(meta))
	inl := respLen
	if inl > rspInlineMax {
		inl = rspInlineMax
	}
	if inl > 0 {
		n.Read(d.rspInlineG(s), resp[:inl])
	}
	if respLen > rspInlineMax {
		n.Read(d.rspSpillG(s), resp[inl:respLen])
	}
	return respLen, status, true
}

// Call posts one operation and spins until the owner's response arrives.
// resp (capacity >= PayloadMax) receives the reply; Call returns the reply
// length and the handler's status code.
func (c *Client) Call(op uint32, req []byte, resp []byte) (respLen int, status uint32) {
	c.Post(op, req)
	for {
		n, st, done := c.TryComplete(resp)
		if done {
			return n, st
		}
		runtime.Gosched()
	}
}

// ClientGroup is one caller's exclusive binding to a CONTIGUOUS range of
// slots, for posting several operations per sweep with batched fabric
// traffic: requests are staged with plain stores and flushed together
// (one write-back burst for the request stripe, one for the sequence
// words when the range covers whole sequence lines), and the response
// stripe is refreshed with one bulk fetch instead of a round trip per
// slot. Not safe for concurrent use.
type ClientGroup struct {
	d          *Domain
	n          *fabric.Node
	lo, count  int
	seqs       []uint64
	next       int  // slots staged or in flight since Recycle
	staged     bool // stores pending Flush
	sharedSeqs bool // sequence words share lines with other clients
	rspBuf     []byte
}

// ClientGroup binds node n to slots [lo, lo+count). For the cheapest
// flush, align lo and count to 8 (a whole packed sequence line per 8
// slots); unaligned ranges fall back to one fabric atomic per posted
// sequence word.
func (d *Domain) ClientGroup(n *fabric.Node, lo, count int) *ClientGroup {
	if lo < 0 || count <= 0 || lo+count > d.slots {
		panic(fmt.Sprintf("delegation: slot range [%d,%d) out of range [0,%d)", lo, lo+count, d.slots))
	}
	return &ClientGroup{
		d:          d,
		n:          n,
		lo:         lo,
		count:      count,
		seqs:       make([]uint64, count),
		sharedSeqs: lo%wordsPerLine != 0 || count%wordsPerLine != 0,
		rspBuf:     make([]byte, count*rspSlotSize),
	}
}

// Count returns the number of slots in the group.
func (g *ClientGroup) Count() int { return g.count }

// Free returns how many slots remain for Post before Recycle.
func (g *ClientGroup) Free() int { return g.count - g.next }

// Post stages one operation into the group's next free slot and returns
// its index within the group (pass it to TryComplete). Nothing reaches
// the owner until Flush.
func (g *ClientGroup) Post(op uint32, req []byte) int {
	if len(req) > PayloadMax {
		panic(fmt.Sprintf("delegation: request %d exceeds max %d", len(req), PayloadMax))
	}
	if g.next == g.count {
		panic("delegation: ClientGroup full; Recycle after completing a batch")
	}
	i := g.next
	g.next++
	g.seqs[i]++
	d, n, s := g.d, g.n, g.lo+i
	n.Store64(d.reqMetaG(s), uint64(op)<<32|uint64(uint32(len(req))))
	inl := len(req)
	if inl > reqInlineMax {
		inl = reqInlineMax
	}
	if inl > 0 {
		n.Write(d.reqInlineG(s), req[:inl])
	}
	if len(req) > reqInlineMax {
		n.Write(d.reqSpillG(s), req[reqInlineMax:])
	}
	g.staged = true
	return i
}

// Flush publishes every staged request: one write-back burst for the
// group's request stripe, then the sequence words — plain stores plus one
// burst when the group owns its sequence lines outright, per-word fabric
// atomics when the lines are shared. Payload lines are home before any
// sequence word advances, exactly like Client.Post.
func (g *ClientGroup) Flush() {
	if !g.staged {
		return
	}
	g.staged = false
	d, n := g.d, g.n
	n.WriteBackRange(d.reqMetaG(g.lo), uint64(g.count)*reqSlotSize)
	if g.sharedSeqs {
		for i := 0; i < g.next; i++ {
			n.AtomicStore64(d.reqSeqG(g.lo+i), g.seqs[i])
		}
		return
	}
	for i := 0; i < g.next; i++ {
		n.Store64(d.reqSeqG(g.lo+i), g.seqs[i])
	}
	n.WriteBackRange(d.reqSeqG(g.lo), uint64(g.count)*fabric.WordSize)
}

// Refresh bulk-fetches the group's response stripe: one invalidate, one
// pipelined burst. Call it before a round of TryComplete polls; each call
// observes a fresh snapshot.
func (g *ClientGroup) Refresh() {
	d, n := g.d, g.n
	n.InvalidateRange(d.rspSeqG(g.lo), uint64(g.count)*rspSlotSize)
	n.Read(d.rspSeqG(g.lo), g.rspBuf)
}

// TryComplete checks the refreshed snapshot for slot i's response; if
// present it copies the reply into resp and returns done=true. Lines in
// the snapshot were each read atomically in ascending order, so a new
// sequence word is always accompanied by its payload (a spilled payload's
// lines were home before its sequence word was published, and its spill
// line sits after its sequence line in the burst).
func (g *ClientGroup) TryComplete(i int, resp []byte) (respLen int, status uint32, done bool) {
	if i < 0 || i >= g.next {
		panic(fmt.Sprintf("delegation: TryComplete index %d outside staged range [0,%d)", i, g.next))
	}
	line := g.rspBuf[i*rspSlotSize:]
	if binary.LittleEndian.Uint64(line) != g.seqs[i] {
		return 0, 0, false
	}
	meta := binary.LittleEndian.Uint64(line[8:])
	status = uint32(meta >> 32)
	respLen = int(uint32(meta))
	inl := copy(resp[:minInt(respLen, rspInlineMax)], line[16:])
	if respLen > rspInlineMax {
		copy(resp[inl:respLen], line[fabric.LineSize:])
	}
	return respLen, status, true
}

// Recycle resets the group's staging cursor after a batch has fully
// completed, making all slots free for the next batch.
func (g *ClientGroup) Recycle() {
	if g.staged {
		panic("delegation: Recycle with staged, unflushed posts")
	}
	g.next = 0
}
