//go:build !race

package ds

const raceEnabled = false
