package ds

import (
	"fmt"
	"runtime"

	"flacos/internal/fabric"
)

// Vector is a fixed-capacity append-only vector of uint64 in global
// memory, safe for concurrent append and read from any node. Appends
// commit in order, so a reader that observes length L can read every index
// below L.
type Vector struct {
	reserveG fabric.GPtr // atomic: next index to reserve
	commitG  fabric.GPtr // atomic: contiguously published length
	elems    fabric.GPtr
	capacity uint64
}

// NewVector reserves global memory for a vector of the given capacity.
func NewVector(f *fabric.Fabric, capacity uint64) *Vector {
	if capacity == 0 {
		panic("ds: vector capacity must be positive")
	}
	return &Vector{
		reserveG: f.Reserve(fabric.LineSize, fabric.LineSize),
		commitG:  f.Reserve(fabric.LineSize, fabric.LineSize),
		elems:    f.Reserve(capacity*fabric.WordSize, fabric.LineSize),
		capacity: capacity,
	}
}

// Cap returns the vector's fixed capacity.
func (v *Vector) Cap() uint64 { return v.capacity }

// Append adds x and returns its index. It panics when the vector is full
// (capacity is fixed at creation; sizing is a boot-time decision).
func (v *Vector) Append(n *fabric.Node, x uint64) uint64 {
	idx := n.Add64(v.reserveG, 1) - 1
	if idx >= v.capacity {
		panic(fmt.Sprintf("ds: vector full (capacity %d)", v.capacity))
	}
	n.AtomicStore64(v.elems.Add(idx*fabric.WordSize), x)
	// Commit in order: wait for all earlier appends to publish, then
	// advance the watermark past ours.
	for !n.CAS64(v.commitG, idx, idx+1) {
		runtime.Gosched()
	}
	return idx
}

// Len returns the committed length: every index below it is readable.
func (v *Vector) Len(n *fabric.Node) uint64 { return n.AtomicLoad64(v.commitG) }

// Get returns element i. It panics if i is beyond the committed length.
func (v *Vector) Get(n *fabric.Node, i uint64) uint64 {
	if i >= v.Len(n) {
		panic(fmt.Sprintf("ds: vector index %d out of committed range", i))
	}
	return n.AtomicLoad64(v.elems.Add(i * fabric.WordSize))
}

// Set overwrites element i, which must already be committed.
func (v *Vector) Set(n *fabric.Node, i uint64, x uint64) {
	if i >= v.Len(n) {
		panic(fmt.Sprintf("ds: vector index %d out of committed range", i))
	}
	n.AtomicStore64(v.elems.Add(i*fabric.WordSize), x)
}
