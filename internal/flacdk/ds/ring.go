package ds

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"flacos/internal/fabric"
)

// brokenSkipPopInvalidate makes SPSCRing.TryPop skip the cache invalidate
// that makes the producer's published payload visible — a deliberately
// broken sync path the torture harness enables (-torture-break
// ring-invalidate) to prove its checkers catch a removed invalidate.
var brokenSkipPopInvalidate atomic.Bool

// SetBrokenSkipPopInvalidate toggles the torture-only broken consume path.
func SetBrokenSkipPopInvalidate(on bool) { brokenSkipPopInvalidate.Store(on) }

// SPSCRing is a single-producer single-consumer ring of variable-length
// messages in global memory: the zero-copy data plane FlacOS IPC builds on
// (§3.5). Head and tail are fabric atomics; message payloads are plain
// cached data published with write-back and consumed after invalidation —
// the "streaming access synchronized via cache invalidation" pattern the
// paper describes for shared data buffers.
type SPSCRing struct {
	headG    fabric.GPtr // atomic: consumer cursor
	tailG    fabric.GPtr // atomic: producer cursor
	slots    fabric.GPtr
	slotSize uint64 // per-slot bytes, including the 8-byte length header
	capacity uint64 // slots, power of two
}

// NewSPSCRing reserves a ring of capacity slots (rounded to a power of
// two), each carrying messages up to msgMax bytes.
func NewSPSCRing(f *fabric.Fabric, capacity, msgMax uint64) *SPSCRing {
	c := uint64(2)
	for c < capacity {
		c <<= 1
	}
	ss := fabric.AlignUp64(msgMax+8, fabric.LineSize)
	return &SPSCRing{
		headG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		tailG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		slots:    f.Reserve(c*ss, fabric.LineSize),
		slotSize: ss,
		capacity: c,
	}
}

// MsgMax returns the largest message the ring accepts.
func (r *SPSCRing) MsgMax() uint64 { return r.slotSize - 8 }

// Cap returns the ring's slot capacity.
func (r *SPSCRing) Cap() uint64 { return r.capacity }

func (r *SPSCRing) slotG(pos uint64) fabric.GPtr {
	return r.slots.Add((pos & (r.capacity - 1)) * r.slotSize)
}

// TryPush enqueues msg, returning false if the ring is full. Only one
// goroutine (the producer) may call it.
func (r *SPSCRing) TryPush(n *fabric.Node, msg []byte) bool {
	if uint64(len(msg)) > r.MsgMax() {
		panic(fmt.Sprintf("ds: message %d exceeds ring max %d", len(msg), r.MsgMax()))
	}
	t := n.AtomicLoad64(r.tailG)
	if t-n.AtomicLoad64(r.headG) == r.capacity {
		return false
	}
	s := r.slotG(t)
	n.Store64(s, uint64(len(msg)))
	if len(msg) > 0 {
		n.Write(s.Add(8), msg)
	}
	n.WriteBackRange(s, 8+uint64(len(msg)))
	n.AtomicStore64(r.tailG, t+1)
	return true
}

// Push enqueues msg, spinning while the ring is full.
func (r *SPSCRing) Push(n *fabric.Node, msg []byte) {
	for !r.TryPush(n, msg) {
		runtime.Gosched()
	}
}

// TryPop dequeues one message into buf, returning its length and whether a
// message was available. Only one goroutine (the consumer) may call it.
func (r *SPSCRing) TryPop(n *fabric.Node, buf []byte) (int, bool) {
	h := n.AtomicLoad64(r.headG)
	if h == n.AtomicLoad64(r.tailG) {
		return 0, false
	}
	s := r.slotG(h)
	if !brokenSkipPopInvalidate.Load() {
		n.InvalidateRange(s, r.slotSize)
	}
	// The invalidate above is conditional ONLY because the torture
	// harness plants its removal as a self-test bug (-torture-break
	// ring-invalidate); flacvet correctly sees a path without it. The
	// unconditional-skip variant lives in coherlint's testdata corpus,
	// where the linter must (and does) flag it.
	//flacvet:ignore read-without-invalidate torture-only broken path, see SetBrokenSkipPopInvalidate
	ln := n.Load64(s)
	if ln > uint64(len(buf)) {
		panic(fmt.Sprintf("ds: buffer %d too small for message %d", len(buf), ln))
	}
	if ln > 0 {
		n.Read(s.Add(8), buf[:ln])
	}
	n.AtomicStore64(r.headG, h+1)
	return int(ln), true
}

// Pop dequeues one message, spinning while the ring is empty.
func (r *SPSCRing) Pop(n *fabric.Node, buf []byte) int {
	for {
		if ln, ok := r.TryPop(n, buf); ok {
			return ln
		}
		runtime.Gosched()
	}
}

// Len returns the number of queued messages.
func (r *SPSCRing) Len(n *fabric.Node) uint64 {
	return n.AtomicLoad64(r.tailG) - n.AtomicLoad64(r.headG)
}

// MPSCRing is a multi-producer single-consumer ring (Vyukov bounded queue
// over fabric atomics): producers on any node, one consumer. FlacOS uses it
// for request funnels such as the RPC dispatch queue.
type MPSCRing struct {
	headG    fabric.GPtr // atomic: consumer cursor
	tailG    fabric.GPtr // atomic: producer ticket
	slots    fabric.GPtr
	slotSize uint64 // seq line + payload
	capacity uint64
}

// NewMPSCRing reserves a ring of capacity slots (power of two), messages up
// to msgMax bytes. node initializes the per-slot sequence words.
func NewMPSCRing(f *fabric.Fabric, node *fabric.Node, capacity, msgMax uint64) *MPSCRing {
	c := uint64(2)
	for c < capacity {
		c <<= 1
	}
	// Slot: one control line (word0 seq, word1 len) + payload lines.
	ss := fabric.LineSize + fabric.AlignUp64(msgMax, fabric.LineSize)
	r := &MPSCRing{
		headG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		tailG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		slots:    f.Reserve(c*ss, fabric.LineSize),
		slotSize: ss,
		capacity: c,
	}
	for i := uint64(0); i < c; i++ {
		node.AtomicStore64(r.seqG(i), i)
	}
	return r
}

func (r *MPSCRing) seqG(i uint64) fabric.GPtr { return r.slots.Add(i * r.slotSize) }
func (r *MPSCRing) lenG(i uint64) fabric.GPtr { return r.seqG(i).Add(8) }
func (r *MPSCRing) payG(i uint64) fabric.GPtr { return r.seqG(i).Add(fabric.LineSize) }

// MsgMax returns the largest message the ring accepts.
func (r *MPSCRing) MsgMax() uint64 { return r.slotSize - fabric.LineSize }

// TryPush enqueues msg from any producer, returning false if full.
func (r *MPSCRing) TryPush(n *fabric.Node, msg []byte) bool {
	if uint64(len(msg)) > r.MsgMax() {
		panic(fmt.Sprintf("ds: message %d exceeds ring max %d", len(msg), r.MsgMax()))
	}
	pos := n.AtomicLoad64(r.tailG)
	for {
		i := pos & (r.capacity - 1)
		seq := n.AtomicLoad64(r.seqG(i))
		switch {
		case seq == pos:
			if n.CAS64(r.tailG, pos, pos+1) {
				if len(msg) > 0 {
					n.Write(r.payG(i), msg)
					n.WriteBackRange(r.payG(i), uint64(len(msg)))
				}
				n.AtomicStore64(r.lenG(i), uint64(len(msg)))
				n.AtomicStore64(r.seqG(i), pos+1)
				return true
			}
			pos = n.AtomicLoad64(r.tailG)
		case seq < pos:
			return false // slot not yet consumed: full
		default:
			pos = n.AtomicLoad64(r.tailG)
		}
	}
}

// Push enqueues msg, spinning while the ring is full.
func (r *MPSCRing) Push(n *fabric.Node, msg []byte) {
	for !r.TryPush(n, msg) {
		runtime.Gosched()
	}
}

// TryPop dequeues one message; single consumer only.
func (r *MPSCRing) TryPop(n *fabric.Node, buf []byte) (int, bool) {
	pos := n.AtomicLoad64(r.headG)
	i := pos & (r.capacity - 1)
	if n.AtomicLoad64(r.seqG(i)) != pos+1 {
		return 0, false
	}
	ln := n.AtomicLoad64(r.lenG(i))
	if ln > uint64(len(buf)) {
		panic(fmt.Sprintf("ds: buffer %d too small for message %d", len(buf), ln))
	}
	if ln > 0 {
		n.InvalidateRange(r.payG(i), ln)
		n.Read(r.payG(i), buf[:ln])
	}
	n.AtomicStore64(r.seqG(i), pos+r.capacity)
	n.AtomicStore64(r.headG, pos+1)
	return int(ln), true
}

// Pop dequeues one message, spinning while the ring is empty.
func (r *MPSCRing) Pop(n *fabric.Node, buf []byte) int {
	for {
		if ln, ok := r.TryPop(n, buf); ok {
			return ln
		}
		runtime.Gosched()
	}
}
