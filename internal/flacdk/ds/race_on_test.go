//go:build race

package ds

// raceEnabled lets the history tests shrink their recorded histories
// when the race detector multiplies the WGL search cost by an order of
// magnitude; the interleaving coverage comes from the per-window
// overlap, not the history length.
const raceEnabled = true
