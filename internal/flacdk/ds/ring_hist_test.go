package ds

import (
	"encoding/binary"
	"runtime"
	"sync"
	"testing"

	"flacos/internal/histcheck"
)

// Linearizability tests for the fabric rings: producers and consumers on
// different nodes record PUSH/POP histories through histcheck's Recorder
// and the checker decides whether the rings really are the linearizable
// FIFO queues the IPC layer assumes — the history-test counterpart of
// the torture harness's probabilistic ring sweeps.

// TestSPSCRingHistoryLinearizable runs the producer and consumer on
// different nodes and checks the recorded history against the FIFO
// queue model, including TryPop misses.
func TestSPSCRingHistoryLinearizable(t *testing.T) {
	const msgs = 500
	f := rack(t, 2, 4)
	r := NewSPSCRing(f, 64, 16)
	rec := histcheck.NewRecorder()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n := f.Node(0)
		buf := make([]byte, 8)
		for v := uint64(1); v <= msgs; v++ {
			binary.LittleEndian.PutUint64(buf, v)
			p := rec.Begin(0, histcheck.QueueInput{Op: histcheck.QueuePush, Val: v})
			r.Push(n, buf)
			p.End(histcheck.QueueOutput{})
		}
	}()
	go func() {
		defer wg.Done()
		n := f.Node(1)
		buf := make([]byte, 16)
		// SPSC emptiness IS linearizable (TryPop compares the head
		// against an atomic load of the published tail), so misses are
		// recorded too — throttled, or the spin loop would swamp the
		// history. Dropping operations is sound: any sub-history of a
		// linearizable history is linearizable.
		misses := 0
		for got := 0; got < msgs; {
			p := rec.Begin(1, histcheck.QueueInput{Op: histcheck.QueuePop})
			ln, ok := r.TryPop(n, buf)
			if !ok {
				if misses%128 == 0 {
					p.End(histcheck.QueueOutput{})
				}
				misses++
				continue
			}
			if ln != 8 {
				t.Errorf("pop returned %d bytes, want 8", ln)
				return
			}
			p.End(histcheck.QueueOutput{Val: binary.LittleEndian.Uint64(buf), OK: true})
			got++
		}
	}()
	wg.Wait()
	if res := histcheck.Check(histcheck.QueueModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
}

// TestMPSCRingHistoryLinearizable fans three producers on different
// nodes into one consumer; values are globally unique so the checker
// pins every pop to its push.
func TestMPSCRingHistoryLinearizable(t *testing.T) {
	// Sized so the race-instrumented WGL search stays in CI budget: the
	// checker's cost is in the per-window interleavings, not the volume.
	const producers = 3
	each := 80
	if raceEnabled {
		each = 25
	}
	f := rack(t, 4, 4)
	r := NewMPSCRing(f, f.Node(0), 32, 16)
	rec := histcheck.NewRecorder()

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			n := f.Node(pr)
			buf := make([]byte, 8)
			for i := 0; i < each; i++ {
				v := uint64(pr)*1_000_000 + uint64(i) + 1
				binary.LittleEndian.PutUint64(buf, v)
				p := rec.Begin(pr, histcheck.QueueInput{Op: histcheck.QueuePush, Val: v})
				r.Push(n, buf)
				p.End(histcheck.QueueOutput{})
			}
		}(pr)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := f.Node(producers)
		buf := make([]byte, 16)
		// MPSC emptiness is deliberately NOT recorded: in a Vyukov-style
		// ring a producer that claimed ticket t but has not yet published
		// hides every later completed push from the consumer, so "empty"
		// can be reported after another push already returned — correct
		// ring behavior, but not linearizable as a queue observation. The
		// push/pop sub-history is linearizable, and that is the contract
		// the IPC layer relies on.
		for got := 0; got < producers*each; {
			p := rec.Begin(producers, histcheck.QueueInput{Op: histcheck.QueuePop})
			ln, ok := r.TryPop(n, buf)
			if !ok {
				runtime.Gosched()
				continue
			}
			if ln != 8 {
				t.Errorf("pop returned %d bytes, want 8", ln)
				return
			}
			p.End(histcheck.QueueOutput{Val: binary.LittleEndian.Uint64(buf), OK: true})
			got++
		}
	}()
	wg.Wait()
	if res := histcheck.Check(histcheck.QueueModel(), rec.Operations()); !res.Ok {
		t.Fatal(res.Info)
	}
}
