package ds

import (
	"testing"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

func benchRack(b *testing.B) *fabric.Fabric {
	b.Helper()
	return fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
}

func BenchmarkHashMapPut(b *testing.B) {
	f := benchRack(b)
	m := NewHashMap(f, 1<<20)
	n := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Put(n, uint64(i%500_000)+1, uint64(i))
	}
}

func BenchmarkHashMapGet(b *testing.B) {
	f := benchRack(b)
	m := NewHashMap(f, 1<<16)
	n := f.Node(0)
	for i := uint64(1); i <= 10_000; i++ {
		m.Put(n, i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(n, uint64(i%10_000)+1)
	}
}

func BenchmarkVectorAppend(b *testing.B) {
	f := benchRack(b)
	v := NewVector(f, uint64(b.N)+1)
	n := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Append(n, uint64(i))
	}
}

func BenchmarkSPSCRingRoundTrip(b *testing.B) {
	f := benchRack(b)
	r := NewSPSCRing(f, 8, 256)
	prod, cons := f.Node(0), f.Node(1)
	msg := make([]byte, 64)
	buf := make([]byte, 256)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(prod, msg)
		r.Pop(cons, buf)
	}
}

func BenchmarkMPSCRingRoundTrip(b *testing.B) {
	f := benchRack(b)
	r := NewMPSCRing(f, f.Node(0), 8, 256)
	prod, cons := f.Node(1), f.Node(0)
	msg := make([]byte, 64)
	buf := make([]byte, 256)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(prod, msg)
		r.Pop(cons, buf)
	}
}

func BenchmarkRadixPutGet(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 256 << 20, Nodes: 1})
	a := alloc.NewArena(f, 192<<20)
	n := f.Node(0)
	na := a.NodeAllocator(n, 0)
	tr := NewRadixTree(f, na, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%100_000)*7919 + 1
		tr.Put(n, na, k, uint64(i)+1)
		tr.Get(n, k)
	}
}
