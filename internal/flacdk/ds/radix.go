package ds

import (
	"fmt"

	"flacos/internal/fabric"
)

// Allocator is the node-allocator subset the radix tree needs.
type Allocator interface {
	// Alloc returns a zero-initialized global block of at least size bytes.
	Alloc(size uint64) fabric.GPtr
}

// RadixTree is a lock-free radix tree in global memory mapping fixed-width
// keys to uint64 values, usable concurrently from every node. Interior
// nodes are 256-way fan-out tables of child pointers installed with CAS;
// leaf tables hold raw value words. FlacOS uses the same shape for its
// shared page table (memsys builds its own, hardware-layout one) and for
// file page indexes.
//
// The value 0 means "absent"; store v+1 style encodings if 0 is meaningful.
type RadixTree struct {
	rootG  fabric.GPtr // the root table (allocated eagerly)
	levels int         // number of 8-bit levels
}

const radixFanout = 256
const radixNodeSize = radixFanout * fabric.WordSize // 2 KiB

// NewRadixTree creates a tree for keys of keyBits (8..64, multiple of 8).
func NewRadixTree(f *fabric.Fabric, a Allocator, keyBits int) *RadixTree {
	if keyBits < 8 || keyBits > 64 || keyBits%8 != 0 {
		panic(fmt.Sprintf("ds: radix keyBits %d must be a multiple of 8 in [8,64]", keyBits))
	}
	return &RadixTree{rootG: a.Alloc(radixNodeSize), levels: keyBits / 8}
}

// Levels returns the number of 8-bit levels.
func (t *RadixTree) Levels() int { return t.levels }

func (t *RadixTree) slot(node fabric.GPtr, key uint64, level int) fabric.GPtr {
	shift := uint((t.levels - 1 - level) * 8)
	idx := (key >> shift) & 0xff
	return node.Add(idx * fabric.WordSize)
}

// descend walks to the leaf slot for key, creating interior nodes with a
// (alloc may be nil for read-only walks; missing nodes end the walk).
func (t *RadixTree) descend(n *fabric.Node, a Allocator, key uint64) fabric.GPtr {
	node := t.rootG
	for level := 0; level < t.levels-1; level++ {
		s := t.slot(node, key, level)
		child := fabric.GPtr(n.AtomicLoad64(s))
		if child.IsNil() {
			if a == nil {
				return fabric.Nil
			}
			fresh := a.Alloc(radixNodeSize)
			if n.CAS64(s, 0, uint64(fresh)) {
				child = fresh
			} else {
				// Lost the install race; the winner's node is in place. The
				// fresh node was never published, so it simply leaks back to
				// the allocator's accounting — acceptable for interior nodes,
				// which are never freed anyway.
				child = fabric.GPtr(n.AtomicLoad64(s))
			}
		}
		node = child
	}
	return t.slot(node, key, t.levels-1)
}

// Put maps key -> value (value 0 erases). Returns the previous value.
func (t *RadixTree) Put(n *fabric.Node, a Allocator, key, value uint64) uint64 {
	t.checkKey(key)
	leaf := t.descend(n, a, key)
	return n.Swap64(leaf, value)
}

// CompareAndSwap installs value only if the slot currently holds old.
func (t *RadixTree) CompareAndSwap(n *fabric.Node, a Allocator, key, old, value uint64) bool {
	t.checkKey(key)
	leaf := t.descend(n, a, key)
	return n.CAS64(leaf, old, value)
}

// Get returns the value for key (0 if absent).
func (t *RadixTree) Get(n *fabric.Node, key uint64) uint64 {
	t.checkKey(key)
	leaf := t.descend(n, nil, key)
	if leaf.IsNil() {
		return 0
	}
	return n.AtomicLoad64(leaf)
}

// Delete erases key, returning the previous value.
func (t *RadixTree) Delete(n *fabric.Node, key uint64) uint64 {
	t.checkKey(key)
	leaf := t.descend(n, nil, key)
	if leaf.IsNil() {
		return 0
	}
	return n.Swap64(leaf, 0)
}

func (t *RadixTree) checkKey(key uint64) {
	if t.levels < 8 && key>>(uint(t.levels)*8) != 0 {
		panic(fmt.Sprintf("ds: radix key %#x exceeds %d-bit keyspace", key, t.levels*8))
	}
}
