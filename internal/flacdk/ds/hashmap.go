package ds

import (
	"fmt"

	"flacos/internal/fabric"
)

// HashMap is a fixed-capacity open-addressing hash table in global memory
// mapping non-zero uint64 keys to uint64 values below 2^63, safe for
// concurrent use from every node.
//
// Each slot is two fabric words: a key word claimed with CAS and a value
// word that encodes presence in its low bit (so a concurrent reader can
// never observe a claimed-but-unwritten value). Deleted slots become
// tombstones and are not reused — the concurrent-probe-safe behaviour for
// a structure whose FlacOS uses (page-cache index, socket registry, page
// dedup table) are insert-heavy and delete-rare. Size accordingly.
type HashMap struct {
	slots    fabric.GPtr
	capacity uint64 // power of two
	countG   fabric.GPtr
}

const tombstone = ^uint64(0)

// NewHashMap reserves a table with at least capacity slots (rounded up to
// a power of two).
func NewHashMap(f *fabric.Fabric, capacity uint64) *HashMap {
	c := uint64(8)
	for c < capacity {
		c <<= 1
	}
	return &HashMap{
		slots:    f.Reserve(c*2*fabric.WordSize, fabric.LineSize),
		capacity: c,
		countG:   f.Reserve(fabric.LineSize, fabric.LineSize),
	}
}

// Cap returns the table's slot capacity.
func (m *HashMap) Cap() uint64 { return m.capacity }

// Len returns the number of live entries.
func (m *HashMap) Len(n *fabric.Node) uint64 { return n.AtomicLoad64(m.countG) }

func (m *HashMap) keyG(i uint64) fabric.GPtr   { return m.slots.Add(i * 2 * fabric.WordSize) }
func (m *HashMap) valueG(i uint64) fabric.GPtr { return m.keyG(i).Add(fabric.WordSize) }

// mix is a 64-bit finalizer (splitmix64) for slot hashing.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func checkKey(key uint64) {
	if key == 0 || key == tombstone {
		panic(fmt.Sprintf("ds: invalid HashMap key %#x", key))
	}
}

// Put inserts or updates key -> value. It returns the previous value and
// whether the key was already present. value must be below 2^63.
func (m *HashMap) Put(n *fabric.Node, key, value uint64) (prev uint64, existed bool) {
	checkKey(key)
	if value >= 1<<63 {
		panic("ds: HashMap value must be below 2^63")
	}
	enc := value<<1 | 1
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		switch k {
		case 0:
			if !n.CAS64(m.keyG(i), 0, key) {
				// Lost the slot; re-examine it (the winner may be our key).
				i = (i - 1) & (m.capacity - 1)
				probes--
				continue
			}
			n.AtomicStore64(m.valueG(i), enc)
			n.Add64(m.countG, 1)
			return 0, false
		case key:
			old := n.Swap64(m.valueG(i), enc)
			if n.AtomicLoad64(m.keyG(i)) != key {
				// A concurrent Delete tombstoned the slot around our value
				// write; our value must not live in a dead slot. Undo and
				// retry the whole Put (it will claim a fresh slot).
				n.AtomicStore64(m.valueG(i), 0)
				return m.Put(n, key, value)
			}
			if old == 0 {
				// The inserting node had claimed the key but not yet stored
				// the value; treat as fresh insert (it has no previous value).
				return 0, false
			}
			return old >> 1, true
		}
	}
	panic(fmt.Sprintf("ds: HashMap full (capacity %d, tombstones count)", m.capacity))
}

// Get returns the value for key and whether it is present.
func (m *HashMap) Get(n *fabric.Node, key uint64) (uint64, bool) {
	checkKey(key)
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		if k == 0 {
			return 0, false
		}
		if k != key {
			continue // occupied by another key or tombstone: keep probing
		}
		v := n.AtomicLoad64(m.valueG(i))
		if v&1 == 0 {
			return 0, false // claimed but value not yet published, or deleted
		}
		return v >> 1, true
	}
	return 0, false
}

// PutIfAbsent inserts key -> value only if key is absent. It returns the
// value actually mapped (the existing one on conflict) and whether this
// call inserted it. Racing installers therefore agree on one winner — the
// install protocol the shared page cache uses so concurrent misses on two
// nodes end up sharing a single frame.
func (m *HashMap) PutIfAbsent(n *fabric.Node, key, value uint64) (actual uint64, inserted bool) {
	checkKey(key)
	if value >= 1<<63 {
		panic("ds: HashMap value must be below 2^63")
	}
	enc := value<<1 | 1
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		switch k {
		case 0:
			if !n.CAS64(m.keyG(i), 0, key) {
				i = (i - 1) & (m.capacity - 1)
				probes--
				continue
			}
			n.AtomicStore64(m.valueG(i), enc)
			n.Add64(m.countG, 1)
			return value, true
		case key:
			for {
				v := n.AtomicLoad64(m.valueG(i))
				if v&1 == 1 {
					return v >> 1, false
				}
				// The claimer has not yet published its value (or a racing
				// delete). Re-check the key; spin briefly otherwise.
				if n.AtomicLoad64(m.keyG(i)) != key {
					break // tombstoned: resume probing
				}
			}
		}
	}
	panic(fmt.Sprintf("ds: HashMap full (capacity %d)", m.capacity))
}

// Exchange atomically replaces key's value and returns the previous one,
// but only if the key is already present — unlike Put it never inserts.
// It is the update primitive for protocols that bind a slot to a key once
// (with PutIfAbsent) and thereafter replace the value unconditionally:
// every racing Exchange receives a distinct previous value, so exactly one
// owner exists for each replaced object (the property the rack-shared
// Redis store relies on to retire old value blocks exactly once).
func (m *HashMap) Exchange(n *fabric.Node, key, value uint64) (prev uint64, existed bool) {
	checkKey(key)
	if value >= 1<<63 {
		panic("ds: HashMap value must be below 2^63")
	}
	enc := value<<1 | 1
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		if k == 0 {
			return 0, false
		}
		if k != key {
			continue
		}
		for {
			v := n.AtomicLoad64(m.valueG(i))
			if v&1 == 0 {
				if n.AtomicLoad64(m.keyG(i)) != key {
					break // concurrently tombstoned: resume probing
				}
				// The inserting node claimed the key but has not published
				// its value: the key is not yet readable, so linearize the
				// Exchange before the insert and report it absent.
				return 0, false
			}
			if n.CAS64(m.valueG(i), v, enc) {
				return v >> 1, true
			}
		}
	}
	return 0, false
}

// CompareAndSwap replaces key's value with new only if it currently equals
// old. It returns false if the key is absent or the value differs. Both
// values must be below 2^63.
func (m *HashMap) CompareAndSwap(n *fabric.Node, key, old, new uint64) bool {
	checkKey(key)
	if old >= 1<<63 || new >= 1<<63 {
		panic("ds: HashMap value must be below 2^63")
	}
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		if k == 0 {
			return false
		}
		if k != key {
			continue
		}
		return n.CAS64(m.valueG(i), old<<1|1, new<<1|1)
	}
	return false
}

// Delete removes key, returning its value and whether it was present. The
// slot becomes a tombstone.
func (m *HashMap) Delete(n *fabric.Node, key uint64) (uint64, bool) {
	checkKey(key)
	for i, probes := mix(key)&(m.capacity-1), uint64(0); probes < m.capacity; i, probes = (i+1)&(m.capacity-1), probes+1 {
		k := n.AtomicLoad64(m.keyG(i))
		if k == 0 {
			return 0, false
		}
		if k != key {
			continue
		}
		if !n.CAS64(m.keyG(i), key, tombstone) {
			return 0, false // concurrent delete won
		}
		old := n.Swap64(m.valueG(i), 0)
		if old&1 == 0 {
			return 0, false
		}
		n.Add64(m.countG, ^uint64(0)) // -1
		return old >> 1, true
	}
	return 0, false
}

// Range calls fn for every live entry as observed during one pass; entries
// concurrently inserted or deleted may or may not be seen. fn returning
// false stops the walk.
func (m *HashMap) Range(n *fabric.Node, fn func(key, value uint64) bool) {
	for i := uint64(0); i < m.capacity; i++ {
		k := n.AtomicLoad64(m.keyG(i))
		if k == 0 || k == tombstone {
			continue
		}
		v := n.AtomicLoad64(m.valueG(i))
		if v&1 == 0 {
			continue
		}
		if !fn(k, v>>1) {
			return
		}
	}
}
