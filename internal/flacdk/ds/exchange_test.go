package ds

import (
	"sync"
	"testing"
)

func TestHashMapExchange(t *testing.T) {
	f := rack(t, 2, 4)
	m := NewHashMap(f, 64)
	n0, n1 := f.Node(0), f.Node(1)

	// Exchange never inserts.
	if _, existed := m.Exchange(n0, 7, 100); existed {
		t.Fatal("Exchange inserted into an absent key")
	}
	if _, ok := m.Get(n0, 7); ok {
		t.Fatal("absent key became present")
	}

	m.Put(n0, 7, 1)
	prev, existed := m.Exchange(n1, 7, 2)
	if !existed || prev != 1 {
		t.Fatalf("Exchange = (%d, %v), want (1, true)", prev, existed)
	}
	if v, _ := m.Get(n0, 7); v != 2 {
		t.Fatalf("value after Exchange = %d", v)
	}

	// After a Delete, Exchange sees the key as absent again.
	m.Delete(n0, 7)
	if _, existed := m.Exchange(n1, 7, 9); existed {
		t.Fatal("Exchange resurrected a deleted key")
	}
}

// TestHashMapExchangeUniquePrev is the property the rack-shared Redis
// store builds its reclamation on: when N racing Exchanges replace the
// same key, every one of them receives a DISTINCT previous value, so
// each displaced object gets exactly one owner to retire it.
func TestHashMapExchangeUniquePrev(t *testing.T) {
	const (
		workers = 8
		each    = 200
	)
	f := rack(t, 4, 8)
	m := NewHashMap(f, 64)
	m.Put(f.Node(0), 1, 0)

	var wg sync.WaitGroup
	prevs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w % f.NumNodes())
			for i := 0; i < each; i++ {
				// Values unique per (worker, i), all below 2^63.
				val := uint64(w*each+i) + 1
				prev, existed := m.Exchange(n, 1, val)
				if !existed {
					t.Errorf("worker %d: bound key reported absent", w)
					return
				}
				prevs[w] = append(prevs[w], prev)
			}
		}(w)
	}
	wg.Wait()

	seen := map[uint64]bool{}
	for w, ps := range prevs {
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("worker %d: previous value %d handed out twice", w, p)
			}
			seen[p] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("distinct prevs = %d, want %d", len(seen), workers*each)
	}
	// The one value never returned as a prev is the current occupant.
	cur, ok := m.Get(f.Node(0), 1)
	if !ok || seen[cur] {
		t.Fatalf("final value %d (present %v) was also handed out as a prev", cur, ok)
	}
}
