// Package ds provides FlacDK's high-level concurrent data structures
// (paper §3.2, the third synchronization library level): vector, hash
// table, ring buffers, and radix tree, all usable concurrently from every
// node of the rack without hardware cache coherence.
//
// The structures keep all cross-node-visible control state in fabric
// atomics (which bypass the simulated caches) and restrict plain cached
// accesses to bulk payload regions that are published with explicit
// write-back and consumed after explicit invalidation. This makes them
// correct on the non-coherent fabric by construction, and their fabric
// traffic per operation is exactly the cost model the FlacOS ablations
// measure.
package ds
