package ds

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/alloc"
)

func rack(t *testing.T, nodes int, mb uint64) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: mb << 20, Nodes: nodes})
}

// --- Vector ---

func TestVectorAppendGetSet(t *testing.T) {
	f := rack(t, 1, 4)
	v := NewVector(f, 16)
	n := f.Node(0)
	if v.Cap() != 16 || v.Len(n) != 0 {
		t.Fatal("fresh vector wrong")
	}
	for i := uint64(0); i < 10; i++ {
		if idx := v.Append(n, i*i); idx != i {
			t.Fatalf("Append idx = %d, want %d", idx, i)
		}
	}
	if v.Len(n) != 10 {
		t.Fatalf("Len = %d", v.Len(n))
	}
	if v.Get(n, 3) != 9 {
		t.Fatalf("Get(3) = %d", v.Get(n, 3))
	}
	v.Set(n, 3, 42)
	if v.Get(n, 3) != 42 {
		t.Fatal("Set failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Get beyond commit should panic")
			}
		}()
		v.Get(n, 10)
	}()
}

func TestVectorConcurrentAppendFromAllNodes(t *testing.T) {
	const nodes, perNode = 4, 200
	f := rack(t, nodes, 4)
	v := NewVector(f, nodes*perNode)
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w)
			for i := 0; i < perNode; i++ {
				v.Append(n, uint64(w)<<32|uint64(i))
			}
		}(w)
	}
	wg.Wait()
	n := f.Node(0)
	if v.Len(n) != nodes*perNode {
		t.Fatalf("Len = %d", v.Len(n))
	}
	// Every (worker, i) pair must appear exactly once.
	seen := map[uint64]bool{}
	for i := uint64(0); i < nodes*perNode; i++ {
		x := v.Get(n, i)
		if seen[x] {
			t.Fatalf("duplicate element %#x", x)
		}
		seen[x] = true
	}
}

func TestVectorFullPanics(t *testing.T) {
	f := rack(t, 1, 4)
	v := NewVector(f, 2)
	n := f.Node(0)
	v.Append(n, 1)
	v.Append(n, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("overflow should panic")
		}
	}()
	v.Append(n, 3)
}

// --- HashMap ---

func TestHashMapBasics(t *testing.T) {
	f := rack(t, 2, 4)
	m := NewHashMap(f, 64)
	a, b := f.Node(0), f.Node(1)

	if _, ok := m.Get(a, 7); ok {
		t.Fatal("empty map should miss")
	}
	if _, existed := m.Put(a, 7, 100); existed {
		t.Fatal("fresh key reported existing")
	}
	if v, ok := m.Get(b, 7); !ok || v != 100 {
		t.Fatalf("cross-node Get = %d,%v", v, ok)
	}
	if prev, existed := m.Put(b, 7, 200); !existed || prev != 100 {
		t.Fatalf("update: prev=%d existed=%v", prev, existed)
	}
	if m.Len(a) != 1 {
		t.Fatalf("Len = %d", m.Len(a))
	}
	if v, ok := m.Delete(a, 7); !ok || v != 200 {
		t.Fatalf("Delete = %d,%v", v, ok)
	}
	if _, ok := m.Get(b, 7); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len(a) != 0 {
		t.Fatalf("Len after delete = %d", m.Len(a))
	}
	if _, ok := m.Delete(a, 7); ok {
		t.Fatal("double delete reported success")
	}
}

func TestHashMapZeroValueAllowed(t *testing.T) {
	f := rack(t, 1, 4)
	m := NewHashMap(f, 8)
	n := f.Node(0)
	m.Put(n, 5, 0)
	if v, ok := m.Get(n, 5); !ok || v != 0 {
		t.Fatalf("Get = %d,%v (zero values must be distinguishable from absent)", v, ok)
	}
}

func TestHashMapInvalidKeysPanics(t *testing.T) {
	f := rack(t, 1, 4)
	m := NewHashMap(f, 8)
	n := f.Node(0)
	for _, key := range []uint64{0, ^uint64(0)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("key %#x should panic", key)
				}
			}()
			m.Put(n, key, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("huge value should panic")
			}
		}()
		m.Put(n, 1, 1<<63)
	}()
}

func TestHashMapProbeChainAfterTombstone(t *testing.T) {
	f := rack(t, 1, 4)
	m := NewHashMap(f, 8)
	n := f.Node(0)
	// Insert several keys, delete one in the middle of probe chains, and
	// verify the others stay reachable.
	keys := []uint64{1, 2, 3, 4, 5, 6}
	for _, k := range keys {
		m.Put(n, k, k*10)
	}
	m.Delete(n, 3)
	for _, k := range keys {
		v, ok := m.Get(n, k)
		if k == 3 {
			if ok {
				t.Fatal("deleted key reachable")
			}
			continue
		}
		if !ok || v != k*10 {
			t.Fatalf("key %d lost after tombstone (= %d,%v)", k, v, ok)
		}
	}
}

func TestHashMapConcurrentDistinctKeys(t *testing.T) {
	const nodes, perNode = 4, 250
	f := rack(t, nodes, 8)
	m := NewHashMap(f, nodes*perNode*2)
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w)
			for i := 0; i < perNode; i++ {
				key := uint64(w*perNode+i) + 1
				m.Put(n, key, key*3)
			}
		}(w)
	}
	wg.Wait()
	n := f.Node(0)
	if m.Len(n) != nodes*perNode {
		t.Fatalf("Len = %d, want %d", m.Len(n), nodes*perNode)
	}
	for k := uint64(1); k <= nodes*perNode; k++ {
		if v, ok := m.Get(n, k); !ok || v != k*3 {
			t.Fatalf("key %d = %d,%v", k, v, ok)
		}
	}
	count := 0
	m.Range(n, func(k, v uint64) bool { count++; return true })
	if count != nodes*perNode {
		t.Fatalf("Range visited %d", count)
	}
}

func TestHashMapConcurrentSameKeyPutWins(t *testing.T) {
	f := rack(t, 2, 4)
	m := NewHashMap(f, 16)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w)
			for i := 0; i < 200; i++ {
				m.Put(n, 42, uint64(w+1))
			}
		}(w)
	}
	wg.Wait()
	v, ok := m.Get(f.Node(0), 42)
	if !ok || (v != 1 && v != 2) {
		t.Fatalf("final = %d,%v", v, ok)
	}
	if m.Len(f.Node(0)) != 1 {
		t.Fatalf("Len = %d", m.Len(f.Node(0)))
	}
}

func TestHashMapQuickVsModelMap(t *testing.T) {
	f := rack(t, 1, 8)
	m := NewHashMap(f, 1<<12)
	n := f.Node(0)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		key := uint64(rng.Intn(200)) + 1
		switch rng.Intn(3) {
		case 0, 1:
			val := uint64(rng.Intn(1000))
			m.Put(n, key, val)
			model[key] = val
		case 2:
			_, gotOK := m.Delete(n, key)
			_, wantOK := model[key]
			if gotOK != wantOK {
				t.Fatalf("step %d: Delete(%d) ok=%v want %v", i, key, gotOK, wantOK)
			}
			delete(model, key)
		}
		if uint64(len(model)) != m.Len(n) {
			t.Fatalf("step %d: Len=%d model=%d", i, m.Len(n), len(model))
		}
	}
	for k, want := range model {
		if v, ok := m.Get(n, k); !ok || v != want {
			t.Fatalf("key %d = %d,%v want %d", k, v, ok, want)
		}
	}
}

// --- Rings ---

func TestSPSCRingCrossNodeIntegrity(t *testing.T) {
	f := rack(t, 2, 8)
	r := NewSPSCRing(f, 8, 256)
	const msgs = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := f.Node(0)
		for i := 0; i < msgs; i++ {
			msg := make([]byte, 1+i%200)
			if len(msg) >= 4 {
				binary.LittleEndian.PutUint32(msg, uint32(i))
			} else {
				msg[0] = byte(i)
			}
			for j := 4; j < len(msg); j++ {
				msg[j] = byte(i)
			}
			r.Push(n, msg)
		}
	}()
	n := f.Node(1)
	buf := make([]byte, 256)
	for i := 0; i < msgs; i++ {
		ln := r.Pop(n, buf)
		want := 1 + i%200
		if ln != want {
			t.Fatalf("msg %d: len=%d want %d", i, ln, want)
		}
		if ln >= 4 {
			if got := binary.LittleEndian.Uint32(buf); got != uint32(i) {
				t.Fatalf("msg %d: header=%d", i, got)
			}
			for j := 4; j < ln; j++ {
				if buf[j] != byte(i) {
					t.Fatalf("msg %d: corrupt byte %d", i, j)
				}
			}
		}
	}
	wg.Wait()
	if r.Len(f.Node(0)) != 0 {
		t.Fatal("ring not drained")
	}
}

func TestSPSCRingFullAndEmpty(t *testing.T) {
	f := rack(t, 1, 4)
	r := NewSPSCRing(f, 2, 16)
	n := f.Node(0)
	buf := make([]byte, 16)
	if _, ok := r.TryPop(n, buf); ok {
		t.Fatal("pop from empty succeeded")
	}
	if !r.TryPush(n, []byte("a")) || !r.TryPush(n, []byte("b")) {
		t.Fatal("pushes to empty ring failed")
	}
	if r.TryPush(n, []byte("c")) {
		t.Fatal("push to full ring succeeded")
	}
	if ln, ok := r.TryPop(n, buf); !ok || string(buf[:ln]) != "a" {
		t.Fatalf("pop = %q,%v", buf[:ln], ok)
	}
	if !r.TryPush(n, []byte("c")) {
		t.Fatal("push after pop failed")
	}
}

func TestSPSCRingOversizedPanics(t *testing.T) {
	f := rack(t, 1, 4)
	r := NewSPSCRing(f, 2, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized message should panic")
		}
	}()
	r.TryPush(f.Node(0), make([]byte, int(r.MsgMax())+1))
}

func TestMPSCRingMultipleProducers(t *testing.T) {
	const producers, perProducer = 4, 200
	f := rack(t, producers+1, 8)
	r := NewMPSCRing(f, f.Node(0), 16, 64)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w + 1)
			var msg [12]byte
			for i := 0; i < perProducer; i++ {
				binary.LittleEndian.PutUint32(msg[:], uint32(w))
				binary.LittleEndian.PutUint64(msg[4:], uint64(i))
				r.Push(n, msg[:])
			}
		}(w)
	}
	consumer := f.Node(0)
	buf := make([]byte, 64)
	next := make([]uint64, producers)
	for got := 0; got < producers*perProducer; got++ {
		ln := r.Pop(consumer, buf)
		if ln != 12 {
			t.Fatalf("message %d: len %d", got, ln)
		}
		w := binary.LittleEndian.Uint32(buf)
		seq := binary.LittleEndian.Uint64(buf[4:])
		if seq != next[w] {
			t.Fatalf("producer %d out of order: got %d want %d", w, seq, next[w])
		}
		next[w]++
	}
	wg.Wait()
}

// --- RadixTree ---

func TestRadixTreeBasics(t *testing.T) {
	f := rack(t, 2, 16)
	a := alloc.NewArena(f, 8<<20)
	na := a.NodeAllocator(f.Node(0), 0)
	tr := NewRadixTree(f, na, 32)
	n0, n1 := f.Node(0), f.Node(1)

	if tr.Get(n0, 0xdead) != 0 {
		t.Fatal("empty tree should return 0")
	}
	if prev := tr.Put(n0, na, 0xdead, 111); prev != 0 {
		t.Fatalf("Put prev = %d", prev)
	}
	if got := tr.Get(n1, 0xdead); /* cross-node */ got != 111 {
		t.Fatalf("cross-node Get = %d", got)
	}
	if prev := tr.Put(n1, a.NodeAllocator(n1, 0), 0xdead, 222); prev != 111 {
		t.Fatalf("overwrite prev = %d", prev)
	}
	if prev := tr.Delete(n0, 0xdead); prev != 222 {
		t.Fatalf("Delete prev = %d", prev)
	}
	if tr.Get(n0, 0xdead) != 0 {
		t.Fatal("deleted key still present")
	}
}

func TestRadixTreeCAS(t *testing.T) {
	f := rack(t, 1, 16)
	a := alloc.NewArena(f, 8<<20)
	na := a.NodeAllocator(f.Node(0), 0)
	tr := NewRadixTree(f, na, 16)
	n := f.Node(0)
	if !tr.CompareAndSwap(n, na, 9, 0, 5) {
		t.Fatal("CAS on empty slot failed")
	}
	if tr.CompareAndSwap(n, na, 9, 0, 7) {
		t.Fatal("CAS with stale old succeeded")
	}
	if !tr.CompareAndSwap(n, na, 9, 5, 7) {
		t.Fatal("CAS with correct old failed")
	}
	if tr.Get(n, 9) != 7 {
		t.Fatalf("value = %d", tr.Get(n, 9))
	}
}

func TestRadixTreeKeyBoundsPanics(t *testing.T) {
	f := rack(t, 1, 16)
	a := alloc.NewArena(f, 8<<20)
	na := a.NodeAllocator(f.Node(0), 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad keyBits should panic")
			}
		}()
		NewRadixTree(f, na, 12)
	}()
	tr := NewRadixTree(f, na, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("key beyond keyspace should panic")
		}
	}()
	tr.Get(f.Node(0), 1<<16)
}

func TestRadixTreeConcurrentInstall(t *testing.T) {
	const nodes, perNode = 4, 200
	f := rack(t, nodes, 64)
	a := alloc.NewArena(f, 48<<20)
	tr := NewRadixTree(f, a.NodeAllocator(f.Node(0), 0), 32)
	var wg sync.WaitGroup
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w)
			na := a.NodeAllocator(n, 0)
			for i := 0; i < perNode; i++ {
				key := uint64(w)<<20 | uint64(i)*7919
				tr.Put(n, na, key, key+1)
			}
		}(w)
	}
	wg.Wait()
	n := f.Node(0)
	for w := 0; w < nodes; w++ {
		for i := 0; i < perNode; i++ {
			key := uint64(w)<<20 | uint64(i)*7919
			if got := tr.Get(n, key); got != key+1 {
				t.Fatalf("key %#x = %d, want %d", key, got, key+1)
			}
		}
	}
}

func TestRadixTreeQuickVsModel(t *testing.T) {
	f := rack(t, 1, 64)
	a := alloc.NewArena(f, 48<<20)
	n := f.Node(0)
	na := a.NodeAllocator(n, 0)
	tr := NewRadixTree(f, na, 24)
	model := map[uint64]uint64{}
	prop := func(key uint32, val uint32) bool {
		k := uint64(key) % (1 << 24)
		if k == 0 {
			k = 1
		}
		v := uint64(val) + 1
		tr.Put(n, na, k, v)
		model[k] = v
		return tr.Get(n, k) == model[k]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	for k, want := range model {
		if got := tr.Get(n, k); got != want {
			t.Fatalf("key %#x = %d want %d", k, got, want)
		}
	}
}

func ExampleHashMap() {
	f := fabric.New(fabric.Config{GlobalSize: 4 << 20, Nodes: 2})
	m := NewHashMap(f, 64)
	m.Put(f.Node(0), 42, 7)
	v, ok := m.Get(f.Node(1), 42) // visible from any node, no coherence needed
	fmt.Println(v, ok)
	// Output: 7 true
}
