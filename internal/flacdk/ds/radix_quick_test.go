package ds

import (
	"testing"
	"testing/quick"

	"flacos/internal/flacdk/alloc"
)

// radixOp is one model-checked operation; testing/quick generates random
// sequences of them.
type radixOp struct {
	Kind uint8
	Key  uint16
	Val  uint16
}

// TestRadixQuickModel checks random cross-node op sequences against a
// plain Go map model: Put/Swap return values, Get, Delete, and both the
// succeeding and failing arms of CompareAndSwap must agree with the model
// at every step.
func TestRadixQuickModel(t *testing.T) {
	prop := func(ops []radixOp) bool {
		const nodes = 3
		f := rack(t, nodes, 16)
		arena := alloc.NewArena(f, 8<<20)
		as := make([]*alloc.NodeAllocator, nodes)
		for i := range as {
			as[i] = arena.NodeAllocator(f.Node(i), 0)
		}
		tree := NewRadixTree(f, as[0], 16)
		model := make(map[uint64]uint64)
		for i, op := range ops {
			n := f.Node(i % nodes)
			a := as[i%nodes]
			key := uint64(op.Key)
			val := uint64(op.Val) + 1 // the tree reserves 0 for "absent"
			switch op.Kind % 4 {
			case 0:
				if old := tree.Put(n, a, key, val); old != model[key] {
					t.Logf("op %d: Put(%d) displaced %d, model had %d", i, key, old, model[key])
					return false
				}
				model[key] = val
			case 1:
				if got := tree.Get(n, key); got != model[key] {
					t.Logf("op %d: Get(%d) = %d, model has %d", i, key, got, model[key])
					return false
				}
			case 2:
				if old := tree.Delete(n, key); old != model[key] {
					t.Logf("op %d: Delete(%d) returned %d, model had %d", i, key, old, model[key])
					return false
				}
				delete(model, key)
			case 3:
				cur := model[key]
				if op.Val%2 == 0 {
					if !tree.CompareAndSwap(n, a, key, cur, val) {
						t.Logf("op %d: CAS(%d, %d->%d) failed against matching current", i, key, cur, val)
						return false
					}
					model[key] = val
				} else if tree.CompareAndSwap(n, a, key, cur+12345, val) {
					t.Logf("op %d: CAS(%d) succeeded with wrong expected value", i, key)
					return false
				}
			}
		}
		// Final sweep: the whole key space agrees with the model.
		n0 := f.Node(0)
		for key, want := range model {
			if tree.Get(n0, key) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
