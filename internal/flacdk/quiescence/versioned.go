package quiescence

import "flacos/internal/fabric"

// Allocator is the memory source for version buffers. flacdk/alloc
// satisfies it; tests may use a trivial bump allocator.
type Allocator interface {
	// Alloc returns a zero-initialized global region of at least size bytes.
	Alloc(size uint64) fabric.GPtr
	// Free returns a region to the allocator. Called only after a grace
	// period, so no reader can still reference it.
	Free(g fabric.GPtr)
}

// uninitAllocator is optionally implemented by allocators that can skip
// zeroing (flacdk/alloc does). Versioned writers that overwrite the whole
// version use it to avoid a wasted zeroing pass over global memory.
type uninitAllocator interface {
	AllocUninit(size uint64) fabric.GPtr
}

func allocVersion(a Allocator, size uint64, fullOverwrite bool) fabric.GPtr {
	if fullOverwrite {
		if ua, ok := a.(uninitAllocator); ok {
			return ua.AllocUninit(size)
		}
	}
	return a.Alloc(size)
}

// VersionedCell is a multi-version shared object: a single atomic head word
// in global memory pointing at the current immutable version. Writers
// publish a whole new version and retire the old one; readers dereference
// the head inside a read section and invalidate the version's lines before
// reading. This is the update pattern the FlacOS file system uses for its
// shared page cache (§3.4) and the checkpoint mechanism reuses (§3.2).
type VersionedCell struct {
	headG fabric.GPtr
	size  uint64
}

// NewVersionedCell creates a cell whose versions are size bytes, with an
// initial version holding initial (nil means zeroes), allocated from a.
func NewVersionedCell(f *fabric.Fabric, n *fabric.Node, a Allocator, size uint64, initial []byte) *VersionedCell {
	c := &VersionedCell{
		headG: f.Reserve(fabric.LineSize, fabric.LineSize),
		size:  size,
	}
	v := a.Alloc(size)
	if initial != nil {
		n.Write(v, initial)
		n.WriteBackRange(v, uint64(len(initial)))
	}
	n.AtomicStore64(c.headG, uint64(v))
	return c
}

// Size returns the version payload size in bytes.
func (c *VersionedCell) Size() uint64 { return c.size }

// Read copies the current version into buf (len(buf) <= Size) on behalf of
// participant p. It enters a read section around the dereference so the
// version cannot be reclaimed mid-copy, and invalidates before reading so
// no stale lines from a previous residency of the buffer are observed.
func (c *VersionedCell) Read(p *Participant, buf []byte) {
	p.Enter()
	v := fabric.GPtr(p.n.AtomicLoad64(c.headG))
	p.n.InvalidateRange(v, uint64(len(buf)))
	p.n.Read(v, buf)
	p.Exit()
}

// Write publishes a new version containing data, retiring the old version
// back to a after its grace period.
func (c *VersionedCell) Write(p *Participant, a Allocator, data []byte) {
	if uint64(len(data)) > c.size {
		panic("quiescence: VersionedCell.Write data exceeds version size")
	}
	n := p.n
	v := allocVersion(a, c.size, uint64(len(data)) == c.size)
	n.Write(v, data)
	n.WriteBackRange(v, uint64(len(data)))
	old := fabric.GPtr(n.Swap64(c.headG, uint64(v)))
	p.Retire(func() { a.Free(old) })
}

// Update atomically transforms the cell: it reads the current version,
// calls fn to produce the next contents in place, and publishes it; on CAS
// failure (a concurrent writer won) it retries with the fresh version.
func (c *VersionedCell) Update(p *Participant, a Allocator, fn func(cur []byte)) {
	n := p.n
	buf := make([]byte, c.size)
	for {
		p.Enter()
		oldG := fabric.GPtr(n.AtomicLoad64(c.headG))
		n.InvalidateRange(oldG, c.size)
		n.Read(oldG, buf)
		p.Exit()
		fn(buf)
		v := allocVersion(a, c.size, true)
		n.Write(v, buf)
		n.WriteBackRange(v, c.size)
		if n.CAS64(c.headG, uint64(oldG), uint64(v)) {
			p.Retire(func() { a.Free(oldG) })
			return
		}
		a.Free(v) // lost the race; our unpublished version is private, free now
	}
}
