// Package quiescence implements FlacDK's quiescence-based synchronization
// (paper §3.2): RCU-style epochs over the non-coherent fabric, with
// multi-version objects instead of in-place modification.
//
// The paper notes this method is particularly effective on non-cache-
// coherent shared memory because it converts the problem of tracking stale
// cache lines into tracking parallel references (the "bounded incoherence"
// model): an object version is immutable once published, readers always
// invalidate its lines before reading, and a version's memory is reused
// only after a grace period proves no reader can still hold a reference.
//
// Epoch protocol (classic 2-epoch EBR, fabric edition):
//   - a global epoch word lives in global memory, advanced with CAS;
//   - each participant has a reservation word (own cache line): 0 when
//     quiescent, epoch+1 while inside a read section;
//   - the epoch advances only when every active participant has observed
//     the current epoch, and memory retired in epoch e is reclaimed once
//     the global epoch reaches e+2.
//
// Checkpointing integrates here exactly as §3.2 prescribes: a checkpointer
// participates like a reader (Pin), so versions it is copying cannot be
// reclaimed underneath it, and retired versions double as checkpoint data.
package quiescence

import (
	"fmt"
	"runtime"
	"sync"

	"flacos/internal/fabric"
)

// Domain is one reclamation domain shared by up to maxParticipants
// participants across the rack.
type Domain struct {
	fab    *fabric.Fabric
	epochG fabric.GPtr
	resG   []fabric.GPtr
}

// NewDomain reserves the domain's epoch and reservation words.
func NewDomain(f *fabric.Fabric, maxParticipants int) *Domain {
	if maxParticipants <= 0 {
		panic("quiescence: maxParticipants must be positive")
	}
	d := &Domain{
		fab:    f,
		epochG: f.Reserve(fabric.LineSize, fabric.LineSize),
		resG:   make([]fabric.GPtr, maxParticipants),
	}
	for i := range d.resG {
		d.resG[i] = f.Reserve(fabric.LineSize, fabric.LineSize)
	}
	return d
}

// Epoch returns the current global epoch as seen by node n.
func (d *Domain) Epoch(n *fabric.Node) uint64 { return n.AtomicLoad64(d.epochG) }

// retired is one deferred reclamation.
type retired struct {
	epoch uint64
	fn    func()
}

// Participant is one thread-of-execution's attachment to the domain. Each
// participant owns its reservation word exclusively; a Participant must not
// be shared between goroutines (register one per worker).
type Participant struct {
	d  *Domain
	n  *fabric.Node
	id int

	mu      sync.Mutex // guards retired list (local bookkeeping)
	retired []retired
	depth   int
}

// ID returns the participant's slot in the domain (used to Fence it after
// a crash).
func (p *Participant) ID() int { return p.id }

// Participant attaches node n as participant id (0 <= id < maxParticipants).
func (d *Domain) Participant(n *fabric.Node, id int) *Participant {
	if id < 0 || id >= len(d.resG) {
		panic(fmt.Sprintf("quiescence: participant id %d out of range [0,%d)", id, len(d.resG)))
	}
	return &Participant{d: d, n: n, id: id}
}

// Enter begins a read-side critical section, pinning the current epoch.
// Sections nest; only the outermost Enter publishes a reservation.
func (p *Participant) Enter() {
	p.depth++
	if p.depth > 1 {
		return
	}
	e := p.n.AtomicLoad64(p.d.epochG)
	p.n.AtomicStore64(p.d.resG[p.id], e+1)
	// Re-check: the epoch may have advanced between load and store; chase it
	// so our reservation never lags the global epoch at section start.
	for {
		cur := p.n.AtomicLoad64(p.d.epochG)
		if cur == e {
			break
		}
		e = cur
		p.n.AtomicStore64(p.d.resG[p.id], e+1)
	}
}

// Exit ends a read-side critical section.
func (p *Participant) Exit() {
	if p.depth == 0 {
		panic("quiescence: Exit without Enter")
	}
	p.depth--
	if p.depth == 0 {
		p.n.AtomicStore64(p.d.resG[p.id], 0)
	}
}

// Pin is Enter under the name the checkpoint integration uses: a pinned
// epoch guarantees versions retired at or after it survive until Unpin.
func (p *Participant) Pin() { p.Enter() }

// Unpin releases a Pin.
func (p *Participant) Unpin() { p.Exit() }

// Retire schedules fn to run once no participant can still hold a
// reference obtained before this call (i.e. after two epoch advances).
func (p *Participant) Retire(fn func()) {
	e := p.n.AtomicLoad64(p.d.epochG)
	p.mu.Lock()
	p.retired = append(p.retired, retired{epoch: e, fn: fn})
	p.mu.Unlock()
}

// TryAdvance attempts to advance the global epoch. It succeeds only if
// every active participant has pinned the current epoch. Returns whether
// the epoch advanced.
func (p *Participant) TryAdvance() bool {
	n, d := p.n, p.d
	e := n.AtomicLoad64(d.epochG)
	for _, g := range d.resG {
		r := n.AtomicLoad64(g)
		if r != 0 && r != e+1 {
			return false // someone still reads in an older epoch
		}
	}
	return n.CAS64(d.epochG, e, e+1)
}

// Fence clears participant id's reservation word on behalf of a crashed
// node, acting from live node n. A participant that dies inside a read
// section leaves its reservation pinned forever, which would stall epoch
// advance (and with it all reclamation) rack-wide; crash recovery fences
// the dead participant exactly like an expired lease. The fenced
// Participant object must never be used again — attach a fresh one.
func (d *Domain) Fence(n *fabric.Node, id int) {
	if id < 0 || id >= len(d.resG) {
		panic(fmt.Sprintf("quiescence: participant id %d out of range [0,%d)", id, len(d.resG)))
	}
	n.AtomicStore64(d.resG[id], 0)
}

// Collect runs every retired callback whose grace period has elapsed and
// returns how many ran.
func (p *Participant) Collect() int {
	cur := p.n.AtomicLoad64(p.d.epochG)
	p.mu.Lock()
	var ready []retired
	keep := p.retired[:0]
	for _, r := range p.retired {
		if cur >= r.epoch+2 {
			ready = append(ready, r)
		} else {
			keep = append(keep, r)
		}
	}
	p.retired = keep
	p.mu.Unlock()
	for _, r := range ready {
		r.fn()
	}
	return len(ready)
}

// Barrier advances epochs until everything retired before the call is
// reclaimable, then collects. It spins while other participants hold pins,
// so it must not be called from inside a read section.
func (p *Participant) Barrier() {
	if p.depth > 0 {
		panic("quiescence: Barrier inside read section would self-deadlock")
	}
	start := p.n.AtomicLoad64(p.d.epochG)
	for p.n.AtomicLoad64(p.d.epochG) < start+2 {
		if !p.TryAdvance() {
			runtime.Gosched()
		}
	}
	p.Collect()
}

// PendingRetired returns how many retirements await their grace period.
func (p *Participant) PendingRetired() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.retired)
}
