package quiescence

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: nodes})
}

// bumpAlloc is a test allocator: bump allocation, and Free poisons the
// region at home so any reader still holding a reference sees garbage —
// which the VersionedCell tests detect as a torn read.
type bumpAlloc struct {
	mu   sync.Mutex
	f    *fabric.Fabric
	free []fabric.GPtr
	size uint64
}

func newBumpAlloc(f *fabric.Fabric, size uint64) *bumpAlloc {
	return &bumpAlloc{f: f, size: size}
}

func (a *bumpAlloc) Alloc(size uint64) fabric.GPtr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.free) > 0 {
		g := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		zero := make([]byte, a.size)
		a.f.WriteAtHome(g, zero)
		return g
	}
	return a.f.Reserve(fabric.AlignUp64(size, fabric.LineSize), fabric.LineSize)
}

func (a *bumpAlloc) Free(g fabric.GPtr) {
	poison := bytes.Repeat([]byte{0xFF}, int(a.size))
	a.f.WriteAtHome(g, poison)
	a.mu.Lock()
	a.free = append(a.free, g)
	a.mu.Unlock()
}

func TestEpochAdvanceBlockedByReader(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 2)
	reader := d.Participant(f.Node(0), 0)
	writer := d.Participant(f.Node(1), 1)

	reader.Enter()
	if writer.TryAdvance() {
		// The reader pinned the CURRENT epoch, so one advance is allowed —
		// but a second must block until the reader exits.
		if writer.TryAdvance() {
			t.Fatal("epoch advanced twice past an active reader")
		}
	}
	reader.Exit()
	if !writer.TryAdvance() {
		t.Fatal("epoch should advance once reader exited")
	}
}

func TestRetireCollectGracePeriod(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 1)
	p := d.Participant(f.Node(0), 0)

	ran := false
	p.Retire(func() { ran = true })
	if p.Collect() != 0 || ran {
		t.Fatal("retired callback ran before grace period")
	}
	if !p.TryAdvance() || !p.TryAdvance() {
		t.Fatal("advance failed with no readers")
	}
	if p.Collect() != 1 || !ran {
		t.Fatal("retired callback did not run after two advances")
	}
	if p.PendingRetired() != 0 {
		t.Fatal("pending list not drained")
	}
}

func TestBarrierReclaimsEverything(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 1)
	p := d.Participant(f.Node(0), 0)
	count := 0
	for i := 0; i < 5; i++ {
		p.Retire(func() { count++ })
	}
	p.Barrier()
	if count != 5 {
		t.Fatalf("Barrier reclaimed %d of 5", count)
	}
}

func TestNestedSections(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 2)
	p := d.Participant(f.Node(0), 0)
	other := d.Participant(f.Node(1), 1)

	p.Enter()
	p.Enter()
	p.Exit()
	// Still inside: two advances must not both succeed.
	other.TryAdvance()
	if other.TryAdvance() {
		t.Fatal("epoch advanced twice inside nested section")
	}
	p.Exit()
	if !other.TryAdvance() {
		t.Fatal("advance should succeed after outermost Exit")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	f := rack(t, 1)
	p := NewDomain(f, 1).Participant(f.Node(0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Exit without Enter should panic")
		}
	}()
	p.Exit()
}

func TestBarrierInsideSectionPanics(t *testing.T) {
	f := rack(t, 1)
	p := NewDomain(f, 1).Participant(f.Node(0), 0)
	p.Enter()
	defer func() {
		if recover() == nil {
			t.Fatal("Barrier inside section should panic")
		}
	}()
	p.Barrier()
}

func TestParticipantIDBounds(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range participant should panic")
		}
	}()
	d.Participant(f.Node(0), 1)
}

func TestVersionedCellBasicReadWrite(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 2)
	a := newBumpAlloc(f, 64)
	w := d.Participant(f.Node(0), 0)
	r := d.Participant(f.Node(1), 1)

	init := bytes.Repeat([]byte{1}, 64)
	c := NewVersionedCell(f, f.Node(0), a, 64, init)
	buf := make([]byte, 64)
	c.Read(r, buf)
	if !bytes.Equal(buf, init) {
		t.Fatalf("initial read = %v", buf[:4])
	}
	c.Write(w, a, bytes.Repeat([]byte{2}, 64))
	c.Read(r, buf)
	if buf[0] != 2 || buf[63] != 2 {
		t.Fatalf("read after write = %v...%v", buf[0], buf[63])
	}
}

// TestVersionedCellNoUseAfterFree hammers a cell with a writer on one node
// and readers on another. Versions hold a counter value replicated across
// the payload; a reader observing a mixed payload (torn version) or the
// 0xFF poison means reclamation freed a version that a reader could still
// see — the exact bug quiescence exists to prevent.
func TestVersionedCellNoUseAfterFree(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 2)
	const vsize = 64
	a := newBumpAlloc(f, vsize)
	w := d.Participant(f.Node(0), 0)
	r := d.Participant(f.Node(1), 1)

	mk := func(v uint64) []byte {
		b := make([]byte, vsize)
		for i := 0; i < vsize; i += 8 {
			binary.LittleEndian.PutUint64(b[i:], v)
		}
		return b
	}
	c := NewVersionedCell(f, f.Node(0), a, vsize, mk(0))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := uint64(1); v <= 400; v++ {
			c.Write(w, a, mk(v))
			w.TryAdvance()
			w.Collect()
		}
	}()
	buf := make([]byte, vsize)
	for {
		select {
		case <-done:
			return
		default:
		}
		c.Read(r, buf)
		first := binary.LittleEndian.Uint64(buf)
		if first == ^uint64(0) {
			t.Fatal("reader saw poisoned (freed) version")
		}
		for i := 8; i < vsize; i += 8 {
			if v := binary.LittleEndian.Uint64(buf[i:]); v != first {
				t.Fatalf("torn version: word0=%d word%d=%d", first, i/8, v)
			}
		}
	}
}

func TestVersionedCellUpdateContention(t *testing.T) {
	f := rack(t, 2)
	d := NewDomain(f, 2)
	a := newBumpAlloc(f, 64)
	p0 := d.Participant(f.Node(0), 0)
	p1 := d.Participant(f.Node(1), 1)
	c := NewVersionedCell(f, f.Node(0), a, 64, make([]byte, 64))

	incr := func(p *Participant, times int) {
		for i := 0; i < times; i++ {
			c.Update(p, a, func(cur []byte) {
				v := binary.LittleEndian.Uint64(cur)
				binary.LittleEndian.PutUint64(cur, v+1)
			})
			p.TryAdvance()
			p.Collect()
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); incr(p0, 200) }()
	go func() { defer wg.Done(); incr(p1, 200) }()
	wg.Wait()

	buf := make([]byte, 64)
	c.Read(p0, buf)
	if got := binary.LittleEndian.Uint64(buf); got != 400 {
		t.Fatalf("counter = %d, want 400 (lost update in multi-version CAS)", got)
	}
}

func TestWriteOversizedPanics(t *testing.T) {
	f := rack(t, 1)
	d := NewDomain(f, 1)
	a := newBumpAlloc(f, 64)
	p := d.Participant(f.Node(0), 0)
	c := NewVersionedCell(f, f.Node(0), a, 64, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Write should panic")
		}
	}()
	c.Write(p, a, make([]byte, 65))
}
