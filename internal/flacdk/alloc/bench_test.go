package alloc

import (
	"testing"

	"flacos/internal/fabric"
)

func BenchmarkAllocFreeMagazine(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 1})
	a := NewArena(f, 32<<20)
	na := a.NodeAllocator(f.Node(0), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := na.AllocUninit(256)
		na.Free(g)
	}
}

func BenchmarkAllocZeroed4K(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 1})
	a := NewArena(f, 32<<20)
	na := a.NodeAllocator(f.Node(0), 32)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := na.Alloc(4096)
		na.Free(g)
	}
}

func BenchmarkCrossNodeFreeRecycle(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 64 << 20, Nodes: 2})
	a := NewArena(f, 32<<20)
	na0 := a.NodeAllocator(f.Node(0), 0) // magazine off: force central lists
	na1 := a.NodeAllocator(f.Node(1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := na0.AllocUninit(512)
		na1.Free(g)
		na1.FlushMagazines()
	}
}
