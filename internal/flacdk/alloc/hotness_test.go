package alloc

import (
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func TestHotnessTopKAndDecay(t *testing.T) {
	h := NewHotnessTracker(0.5)
	a, b, c := fabric.GPtr(64), fabric.GPtr(128), fabric.GPtr(192)
	for i := 0; i < 10; i++ {
		h.Touch(a)
	}
	for i := 0; i < 5; i++ {
		h.Touch(b)
	}
	h.Touch(c)
	top := h.TopK(2)
	if len(top) != 2 || top[0] != a || top[1] != b {
		t.Fatalf("TopK = %v", top)
	}
	if h.Heat(a) != 10 {
		t.Fatalf("Heat(a) = %v", h.Heat(a))
	}
	// Five decays: a -> 0.3125 (dropped), all gone except none.
	for i := 0; i < 5; i++ {
		h.Decay()
	}
	if h.Heat(a) != 0 || len(h.TopK(10)) != 0 {
		t.Fatalf("decay did not drop cold objects: heat(a)=%v", h.Heat(a))
	}
}

func TestHotnessRenameForget(t *testing.T) {
	h := NewHotnessTracker(0.9)
	old, neu := fabric.GPtr(64), fabric.GPtr(128)
	h.Touch(old)
	h.Touch(old)
	h.Rename(old, neu)
	if h.Heat(old) != 0 || h.Heat(neu) != 2 {
		t.Fatalf("rename: old=%v new=%v", h.Heat(old), h.Heat(neu))
	}
	h.Forget(neu)
	if h.Heat(neu) != 0 {
		t.Fatal("forget failed")
	}
}

func TestBadDecayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("decay 0 should panic")
		}
	}()
	NewHotnessTracker(0)
}

func TestPackHotRelocatesHotObjects(t *testing.T) {
	f, a := arena(t, 1, 2)
	n := f.Node(0)
	na := a.NodeAllocator(n, 0)
	h := NewHotnessTracker(0.9)

	objs := make([]fabric.GPtr, 4)
	for i := range objs {
		objs[i] = na.Alloc(64)
		n.Store64(objs[i], uint64(i+1))
		n.WriteBackRange(objs[i], 8)
	}
	// Touch objects 1 and 3 heavily.
	for i := 0; i < 10; i++ {
		h.Touch(objs[1])
		h.Touch(objs[3])
	}
	h.Touch(objs[0])

	moved := map[fabric.GPtr]fabric.GPtr{}
	releases := h.PackHot(na, 2, 64, func(old, new fabric.GPtr) { moved[old] = new })
	if len(moved) != 2 {
		t.Fatalf("moved %d objects, want 2", len(moved))
	}
	for _, old := range []fabric.GPtr{objs[1], objs[3]} {
		newG, ok := moved[old]
		if !ok {
			t.Fatalf("hot object %v not relocated", old)
		}
		n.InvalidateRange(newG, 8)
		want := n.Load64(old) // old block still intact until release
		if got := n.Load64(newG); got != want {
			t.Fatalf("contents lost in relocation: %d != %d", got, want)
		}
		if h.Heat(newG) == 0 {
			t.Fatal("heat not transferred to new address")
		}
	}
	for _, r := range releases {
		r()
	}
	_, frees := na.Stats()
	if frees != 2 {
		t.Fatalf("frees = %d, want 2", frees)
	}
}

// TestHotnessTrackerConcurrent exercises every tracker method from
// concurrent goroutines; run under -race it proves the mutex added in
// ISSUE 8 covers the whole surface. (Per-page access sampling still
// belongs to internal/tiering's sharded HeatMap — this single lock is for
// coarse allocator-object heat, off the translate path.)
func TestHotnessTrackerConcurrent(t *testing.T) {
	h := NewHotnessTracker(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := fabric.GPtr(g * 1024)
			for i := 0; i < 2000; i++ {
				p := base.Add(uint64(i%16) * 8)
				h.Touch(p)
				_ = h.Heat(p)
				switch i % 100 {
				case 17:
					h.Decay()
				case 41:
					h.Rename(p, p.Add(512*1024))
					h.Forget(p.Add(512 * 1024))
				case 73:
					_ = h.TopK(4)
				}
			}
		}(g)
	}
	wg.Wait()
	if len(h.TopK(64)) == 0 {
		t.Fatal("tracker lost everything")
	}
}
