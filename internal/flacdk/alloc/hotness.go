package alloc

import (
	"sort"
	"sync"

	"flacos/internal/fabric"
)

// HotnessTracker records per-object access frequency with exponentially
// decayed counters, the signal §3.2's layout optimization uses to pack hot
// objects together (better locality, fewer fetched lines) and to steer
// placement across memory tiers. Tracking state is node-local bookkeeping.
//
// All methods are safe for concurrent use: one mutex guards the map, which
// is fine for the allocator's per-object cadence (delegation gating, slab
// packing) but deliberately NOT for per-page-access sampling — a single
// lock on the MMU translate path would serialize every node. Hot paths use
// internal/tiering's sharded HeatMap instead.
type HotnessTracker struct {
	mu    sync.Mutex
	decay float64
	heat  map[fabric.GPtr]float64
}

// NewHotnessTracker creates a tracker with the given decay factor in (0,1];
// each Decay call multiplies every counter by it.
func NewHotnessTracker(decay float64) *HotnessTracker {
	if decay <= 0 || decay > 1 {
		panic("alloc: decay must be in (0,1]")
	}
	return &HotnessTracker{decay: decay, heat: make(map[fabric.GPtr]float64)}
}

// Touch records one access to the object at g.
func (h *HotnessTracker) Touch(g fabric.GPtr) {
	h.mu.Lock()
	h.heat[g]++
	h.mu.Unlock()
}

// Heat returns the object's current decayed access count.
func (h *HotnessTracker) Heat(g fabric.GPtr) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.heat[g]
}

// Decay ages every counter and drops objects that have gone cold (<0.5).
func (h *HotnessTracker) Decay() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for g, v := range h.heat {
		v *= h.decay
		if v < 0.5 {
			delete(h.heat, g)
		} else {
			h.heat[g] = v
		}
	}
}

// Forget removes an object (e.g. after Free or Relocate).
func (h *HotnessTracker) Forget(g fabric.GPtr) {
	h.mu.Lock()
	delete(h.heat, g)
	h.mu.Unlock()
}

// Rename transfers heat from old to new after a relocation.
func (h *HotnessTracker) Rename(old, new fabric.GPtr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if v, ok := h.heat[old]; ok {
		delete(h.heat, old)
		h.heat[new] += v
	}
}

// TopK returns the k hottest objects, hottest first.
func (h *HotnessTracker) TopK(k int) []fabric.GPtr {
	type entry struct {
		g fabric.GPtr
		v float64
	}
	h.mu.Lock()
	all := make([]entry, 0, len(h.heat))
	for g, v := range h.heat {
		all = append(all, entry{g, v})
	}
	h.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].g < all[j].g
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]fabric.GPtr, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].g
	}
	return out
}

// PackHot relocates the tracker's k hottest objects (each objSize bytes)
// into freshly allocated blocks, which the slab design places contiguously
// when allocated back-to-back. update is invoked per object with (old, new)
// so the caller can republish references; the returned release functions
// free the old blocks and must be called (directly or via quiescence
// retirement) once no reader can hold the old addresses.
func (h *HotnessTracker) PackHot(na *NodeAllocator, k int, objSize uint64, update func(old, new fabric.GPtr)) []func() {
	hot := h.TopK(k)
	releases := make([]func(), 0, len(hot))
	for _, old := range hot {
		old := old
		rel := na.Relocate(old, objSize, func(newG fabric.GPtr) {
			h.Rename(old, newG)
			update(old, newG)
		})
		releases = append(releases, rel)
	}
	return releases
}
