package alloc

import (
	"sync"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
)

func arena(t *testing.T, nodes int, mb uint64) (*fabric.Fabric, *Arena) {
	t.Helper()
	f := fabric.New(fabric.Config{GlobalSize: (mb + 4) << 20, Nodes: nodes})
	return f, NewArena(f, mb<<20)
}

func TestClassFor(t *testing.T) {
	cases := map[uint64]uint64{1: 64, 64: 64, 65: 128, 4096: 4096, 4097: 8192, 65536: 65536}
	for in, want := range cases {
		if got := ClassSize(in); got != want {
			t.Errorf("ClassSize(%d) = %d, want %d", in, got, want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversize should panic")
			}
		}()
		ClassSize(MaxAlloc + 1)
	}()
}

func TestAllocZeroedAndAligned(t *testing.T) {
	f, a := arena(t, 1, 2)
	na := a.NodeAllocator(f.Node(0), 0)
	seen := map[fabric.GPtr]bool{}
	for i := 0; i < 100; i++ {
		g := na.Alloc(100)
		if !g.AlignedTo(fabric.LineSize) {
			t.Fatalf("block %v not line aligned", g)
		}
		if seen[g] {
			t.Fatalf("block %v handed out twice", g)
		}
		seen[g] = true
		buf := make([]byte, 128)
		f.Node(0).Read(g, buf)
		for j, b := range buf {
			if b != 0 {
				t.Fatalf("alloc %d byte %d = %d, want 0", i, j, b)
			}
		}
	}
}

func TestFreeReuseSameClass(t *testing.T) {
	f, a := arena(t, 1, 2)
	na := a.NodeAllocator(f.Node(0), 4)
	g1 := na.Alloc(64)
	na.Free(g1)
	g2 := na.Alloc(64)
	if g1 != g2 {
		t.Fatalf("magazine should recycle %v, got %v", g1, g2)
	}
	allocs, frees := na.Stats()
	if allocs != 2 || frees != 1 {
		t.Fatalf("stats = %d/%d", allocs, frees)
	}
}

func TestFreeErrors(t *testing.T) {
	f, a := arena(t, 1, 2)
	na := a.NodeAllocator(f.Node(0), 0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil free", func() { na.Free(fabric.Nil) })
	mustPanic("outside arena", func() { na.Free(fabric.GPtr(8)) })
	mustPanic("unassigned slab", func() { na.Free(a.base.Add(10 * SlabSize)) })
}

func TestCrossNodeAllocFree(t *testing.T) {
	// A block allocated on node 0, published, and freed on node 1 must be
	// reusable: class recovery and the central lists are all atomics-based.
	f, a := arena(t, 2, 2)
	na0 := a.NodeAllocator(f.Node(0), 0)
	na1 := a.NodeAllocator(f.Node(1), 0)
	g := na0.Alloc(1024)
	na1.Free(g)
	na1.FlushMagazines()
	// Node 0 can get it back via the central list eventually.
	seen := false
	for i := 0; i < 1000 && !seen; i++ {
		b := na0.AllocUninit(1024)
		if b == g {
			seen = true
		}
	}
	if !seen {
		t.Fatal("freed block never recycled through central list")
	}
}

func TestConcurrentAllocFreeStress(t *testing.T) {
	const workers, iters = 4, 500
	f, a := arena(t, 4, 8)
	var wg sync.WaitGroup
	var mu sync.Mutex
	claimed := map[fabric.GPtr]int{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			na := a.NodeAllocator(f.Node(w), 8)
			local := make([]fabric.GPtr, 0, 16)
			for i := 0; i < iters; i++ {
				g := na.AllocUninit(256)
				mu.Lock()
				if owner, dup := claimed[g]; dup {
					mu.Unlock()
					t.Errorf("block %v double-allocated (worker %d and %d)", g, owner, w)
					return
				}
				claimed[g] = w
				mu.Unlock()
				local = append(local, g)
				if len(local) == 16 {
					for _, b := range local {
						mu.Lock()
						delete(claimed, b)
						mu.Unlock()
						na.Free(b)
					}
					local = local[:0]
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestArenaExhaustionPanics(t *testing.T) {
	f := fabric.New(fabric.Config{GlobalSize: 2 << 20, Nodes: 1})
	a := NewArena(f, SlabSize) // exactly one slab
	na := a.NodeAllocator(f.Node(0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("exhaustion should panic")
		}
	}()
	for i := 0; i < SlabSize/64+2; i++ {
		na.AllocUninit(64) // never freed
	}
}

func TestRelocatePreservesContents(t *testing.T) {
	f, a := arena(t, 1, 2)
	n := f.Node(0)
	na := a.NodeAllocator(n, 0)
	g := na.Alloc(512)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i * 3)
	}
	n.Write(g, data)
	n.WriteBackRange(g, 512)

	var newG fabric.GPtr
	release := na.Relocate(g, 512, func(ng fabric.GPtr) { newG = ng })
	if newG.IsNil() || newG == g {
		t.Fatalf("relocate gave %v", newG)
	}
	got := make([]byte, 512)
	n.InvalidateRange(newG, 512)
	n.Read(newG, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	release()
	_, frees := na.Stats()
	if frees != 1 {
		t.Fatalf("frees = %d", frees)
	}
}

func TestQuickAllocWriteReadFree(t *testing.T) {
	f, a := arena(t, 1, 8)
	n := f.Node(0)
	na := a.NodeAllocator(n, 8)
	prop := func(sz uint16, fill byte) bool {
		size := uint64(sz%4096) + 1
		g := na.Alloc(size)
		buf := make([]byte, size)
		for i := range buf {
			buf[i] = fill
		}
		n.Write(g, buf)
		got := make([]byte, size)
		n.Read(g, got)
		for i := range got {
			if got[i] != fill {
				return false
			}
		}
		na.Free(g)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
