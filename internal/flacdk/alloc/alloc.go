// Package alloc is FlacDK's object-granularity allocator for global memory
// (paper §3.2): size-class slabs carved from a shared arena, lock-free
// central free lists, and per-node magazines so the common path costs no
// fabric traffic at all.
//
// Design over the non-coherent fabric:
//
//   - The arena is divided into fixed slabs; each slab is dedicated to one
//     size class, recorded in a global class table, so Free can recover an
//     object's class from its address alone (no per-object header).
//   - Central free lists are Treiber stacks whose head words carry an ABA
//     tag in the upper bits. Heads and the per-block next words are accessed
//     only with fabric atomics, which bypass the caches, so the lists are
//     correct without any cache maintenance.
//   - Each node's NodeAllocator keeps small per-class magazines in local
//     memory; only magazine refill/spill touches the shared lists.
//
// Reclamation of objects still referenced by concurrent readers is the job
// of flacdk/quiescence: retire the object there and pass Free as the
// callback. NodeAllocator satisfies quiescence.Allocator directly.
package alloc

import (
	"fmt"
	"sync/atomic"

	"flacos/internal/fabric"
)

// Classes are the supported allocation sizes. An allocation is rounded up
// to the smallest class that fits.
var Classes = []uint64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}

// MaxAlloc is the largest size Alloc accepts; larger regions should be
// carved with fabric.Reserve at boot.
const MaxAlloc = 65536

// SlabSize is the unit in which the arena hands memory to size classes.
const SlabSize = 256 * 1024

const (
	addrBits = 40
	addrMask = (1 << addrBits) - 1
)

func packHead(tag, addr uint64) uint64 { return tag<<addrBits | addr&addrMask }
func headAddr(h uint64) uint64         { return h & addrMask }
func headTag(h uint64) uint64          { return h >> addrBits }

// Arena is the shared allocator state. One Arena is created at boot; every
// node derives a NodeAllocator from it.
type Arena struct {
	fab      *fabric.Fabric
	base     fabric.GPtr
	slabs    uint64
	nextSlab fabric.GPtr // atomic: next unassigned slab index
	classTab fabric.GPtr // atomic word per slab: class index + 1, 0 = unassigned
	heads    []fabric.GPtr
}

// NewArena reserves size bytes of global memory (rounded down to whole
// slabs) and the allocator's control structures.
func NewArena(f *fabric.Fabric, size uint64) *Arena {
	slabs := size / SlabSize
	if slabs == 0 {
		panic("alloc: arena smaller than one slab")
	}
	a := &Arena{
		fab:      f,
		slabs:    slabs,
		nextSlab: f.Reserve(fabric.LineSize, fabric.LineSize),
		classTab: f.Reserve(slabs*fabric.WordSize, fabric.LineSize),
		heads:    make([]fabric.GPtr, len(Classes)),
	}
	for i := range a.heads {
		a.heads[i] = f.Reserve(fabric.LineSize, fabric.LineSize)
	}
	a.base = f.Reserve(slabs*SlabSize, fabric.LineSize)
	return a
}

// classFor returns the class index for an allocation of size bytes.
func classFor(size uint64) int {
	for i, c := range Classes {
		if size <= c {
			return i
		}
	}
	panic(fmt.Sprintf("alloc: size %d exceeds MaxAlloc %d (use fabric.Reserve)", size, MaxAlloc))
}

// ClassSize returns the block size Alloc would use for size bytes.
func ClassSize(size uint64) uint64 { return Classes[classFor(size)] }

// classOf recovers the class of an allocated block from its address.
func (a *Arena) classOf(n *fabric.Node, g fabric.GPtr) int {
	if g < a.base || uint64(g) >= uint64(a.base)+a.slabs*SlabSize {
		panic(fmt.Sprintf("alloc: Free(%v) outside arena", g))
	}
	slab := g.Diff(a.base) / SlabSize
	cls := n.AtomicLoad64(a.classTab.Add(slab * fabric.WordSize))
	if cls == 0 {
		panic(fmt.Sprintf("alloc: Free(%v) in unassigned slab %d", g, slab))
	}
	return int(cls - 1)
}

// push adds block g to class ci's central free list.
func (a *Arena) push(n *fabric.Node, ci int, g fabric.GPtr) {
	head := a.heads[ci]
	for {
		h := n.AtomicLoad64(head)
		n.AtomicStore64(g, headAddr(h)) // block's first word = next
		if n.CAS64(head, h, packHead(headTag(h)+1, uint64(g))) {
			return
		}
	}
}

// pop removes one block from class ci's central free list, or returns Nil.
func (a *Arena) pop(n *fabric.Node, ci int) fabric.GPtr {
	head := a.heads[ci]
	for {
		h := n.AtomicLoad64(head)
		addr := headAddr(h)
		if addr == 0 {
			return fabric.Nil
		}
		next := n.AtomicLoad64(fabric.GPtr(addr))
		if n.CAS64(head, h, packHead(headTag(h)+1, next)) {
			return fabric.GPtr(addr)
		}
	}
}

// grabSlab assigns a fresh slab to class ci and returns its base. The
// grabbing node carves the slab's blocks in its own local bookkeeping —
// carving memory you exclusively own needs no fabric traffic. Panics when
// the arena is exhausted: the rack's global memory budget is fixed at
// boot, so running out is a sizing error, not a runtime condition to limp
// through.
func (a *Arena) grabSlab(n *fabric.Node, ci int) fabric.GPtr {
	s := n.Add64(a.nextSlab, 1) - 1
	if s >= a.slabs {
		panic(fmt.Sprintf("alloc: arena exhausted (%d slabs)", a.slabs))
	}
	n.AtomicStore64(a.classTab.Add(s*fabric.WordSize), uint64(ci+1))
	return a.base.Add(s * SlabSize)
}

// NodeAllocator is a node's fast-path allocator: per-class magazines in
// local memory backed by the shared arena. Not safe for concurrent use by
// multiple goroutines — create one per worker (they share the Arena).
type NodeAllocator struct {
	arena  *Arena
	node   *fabric.Node
	mags   [][]fabric.GPtr
	magCap int
	// reserve holds the unconsumed remainder of slabs this node grabbed:
	// pure local bookkeeping, consumed without fabric traffic.
	reserve [][]fabric.GPtr

	allocs atomic.Uint64
	frees  atomic.Uint64
}

// NodeAllocator derives a fast-path allocator for node n with the given
// magazine capacity per class (<=0 selects the default of 32).
func (a *Arena) NodeAllocator(n *fabric.Node, magCap int) *NodeAllocator {
	if magCap <= 0 {
		magCap = 32
	}
	return &NodeAllocator{
		arena:   a,
		node:    n,
		mags:    make([][]fabric.GPtr, len(Classes)),
		magCap:  magCap,
		reserve: make([][]fabric.GPtr, len(Classes)),
	}
}

// Node returns the fabric node this allocator runs on.
func (na *NodeAllocator) Node() *fabric.Node { return na.node }

// AllocUninit returns a block of at least size bytes with unspecified
// contents. The block is line-aligned (every class is a multiple of the
// line size).
func (na *NodeAllocator) AllocUninit(size uint64) fabric.GPtr {
	ci := classFor(size)
	na.allocs.Add(1)
	if m := na.mags[ci]; len(m) > 0 {
		g := m[len(m)-1]
		na.mags[ci] = m[:len(m)-1]
		return g
	}
	if r := na.reserve[ci]; len(r) > 0 {
		g := r[len(r)-1]
		na.reserve[ci] = r[:len(r)-1]
		return g
	}
	if g := na.arena.pop(na.node, ci); !g.IsNil() {
		return g
	}
	base := na.arena.grabSlab(na.node, ci)
	bs := Classes[ci]
	for off := bs; off+bs <= SlabSize; off += bs {
		na.reserve[ci] = append(na.reserve[ci], base.Add(off))
	}
	return base
}

// Alloc returns a zero-initialized block of at least size bytes. It
// implements quiescence.Allocator.
func (na *NodeAllocator) Alloc(size uint64) fabric.GPtr {
	g := na.AllocUninit(size)
	cs := Classes[classFor(size)]
	zero := make([]byte, cs)
	na.node.Write(g, zero)
	na.node.WriteBackRange(g, cs)
	return g
}

// Free returns a block to the allocator. The caller must guarantee no
// concurrent reader can still dereference it (use quiescence.Retire when
// that is not structurally evident). It implements quiescence.Allocator.
func (na *NodeAllocator) Free(g fabric.GPtr) {
	if g.IsNil() {
		panic("alloc: Free(nil)")
	}
	ci := na.arena.classOf(na.node, g)
	na.frees.Add(1)
	if len(na.mags[ci]) < na.magCap {
		na.mags[ci] = append(na.mags[ci], g)
		return
	}
	// Magazine full: spill half to the central list, then keep g locally.
	spill := na.magCap / 2
	m := na.mags[ci]
	for _, b := range m[len(m)-spill:] {
		na.arena.push(na.node, ci, b)
	}
	na.mags[ci] = append(m[:len(m)-spill], g)
}

// FlushMagazines returns every locally cached block to the central lists
// (e.g. before the node goes idle, or in fault-box teardown).
func (na *NodeAllocator) FlushMagazines() {
	for ci, m := range na.mags {
		for _, b := range m {
			na.arena.push(na.node, ci, b)
		}
		na.mags[ci] = na.mags[ci][:0]
	}
}

// Stats returns the allocator's lifetime alloc and free counts.
func (na *NodeAllocator) Stats() (allocs, frees uint64) {
	return na.allocs.Load(), na.frees.Load()
}

// Relocate moves a live object of size bytes to a freshly allocated block
// (reducing fragmentation, improving packing, or changing tier placement —
// §3.2's "runtime object movement"). It copies the contents, calls update
// with the new address (the caller republishes every reference there), and
// returns a release function that frees the OLD block — to be called
// directly if no concurrent readers exist, or passed to quiescence.Retire.
func (na *NodeAllocator) Relocate(g fabric.GPtr, size uint64, update func(fabric.GPtr)) (release func()) {
	dst := na.AllocUninit(size)
	buf := make([]byte, size)
	na.node.InvalidateRange(g, size)
	na.node.Read(g, buf)
	na.node.Write(dst, buf)
	na.node.WriteBackRange(dst, size)
	update(dst)
	old := g
	return func() { na.Free(old) }
}
