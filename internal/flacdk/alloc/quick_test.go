package alloc

import (
	"bytes"
	"testing"
	"testing/quick"

	"flacos/internal/fabric"
)

func clampSize(raw uint16) uint64 {
	s := uint64(raw) % MaxAlloc
	return s + 1
}

func pattern(seed byte, n uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed*31 + byte(i)*7 + 3
	}
	return b
}

// TestAllocQuickSlabInvariants: for random size mixes allocated from every
// node, size-class slab carving must give line-aligned, non-overlapping
// blocks of at least the requested size, and content written to one block
// never bleeds into another.
func TestAllocQuickSlabInvariants(t *testing.T) {
	prop := func(sizesRaw []uint16) bool {
		if len(sizesRaw) > 64 {
			sizesRaw = sizesRaw[:64]
		}
		const nodes = 2
		f, a := arena(t, nodes, 32)
		as := make([]*NodeAllocator, nodes)
		for i := range as {
			as[i] = a.NodeAllocator(f.Node(i), 4)
		}
		type block struct {
			g    fabric.GPtr
			cs   uint64
			node int
			seed byte
		}
		var live []block
		for i, raw := range sizesRaw {
			size := clampSize(raw)
			cs := ClassSize(size)
			ni := i % nodes
			g := as[ni].AllocUninit(size)
			if uint64(g)%fabric.LineSize != 0 {
				t.Logf("block %#x not line-aligned", g)
				return false
			}
			if cs < size {
				t.Logf("class %d smaller than request %d", cs, size)
				return false
			}
			for _, b := range live {
				if uint64(g) < uint64(b.g)+b.cs && uint64(b.g) < uint64(g)+cs {
					t.Logf("block [%#x,+%d) overlaps live [%#x,+%d)", g, cs, b.g, b.cs)
					return false
				}
			}
			seed := byte(i + 1)
			n := f.Node(ni)
			n.Write(g, pattern(seed, cs))
			n.WriteBackRange(g, cs)
			live = append(live, block{g: g, cs: cs, node: ni, seed: seed})
		}
		buf := make([]byte, MaxAlloc)
		for _, b := range live {
			n := f.Node(b.node)
			n.InvalidateRange(b.g, b.cs)
			n.Read(b.g, buf[:b.cs])
			if !bytes.Equal(buf[:b.cs], pattern(b.seed, b.cs)) {
				t.Logf("block %#x content scribbled by a neighbor", b.g)
				return false
			}
		}
		for _, b := range live {
			as[b.node].Free(b.g)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocQuickRelocateStaleCache is the stale-cache interleaving
// property: node B caches a block's old content, the block is freed and
// reallocated by node A with new content, then B relocates it. Relocate's
// copy MUST invalidate before reading — remove that InvalidateRange and B
// copies its stale lines, which this property detects as the old pattern
// surfacing at the new address.
func TestAllocQuickRelocateStaleCache(t *testing.T) {
	prop := func(sizeRaw uint16, seed byte) bool {
		size := clampSize(sizeRaw)
		cs := ClassSize(size)
		f, a := arena(t, 2, 32)
		nA, nB := f.Node(0), f.Node(1)
		allocA := a.NodeAllocator(nA, 4)
		allocB := a.NodeAllocator(nB, 4)

		// B owns the block first and caches its content X.
		g := allocB.AllocUninit(size)
		x := pattern(seed, cs)
		nB.Write(g, x)
		nB.WriteBackRange(g, cs)
		buf := make([]byte, cs)
		nB.Read(g, buf) // B's cache now holds X's lines

		// The block dies and is immediately recycled by A with content Y.
		allocB.Free(g)
		allocB.FlushMagazines()
		g2 := allocA.AllocUninit(size)
		if g2 != g {
			t.Logf("expected central-list recycle of %#x, got %#x", g, g2)
			return false
		}
		y := pattern(seed+1, cs)
		nA.Write(g2, y)
		nA.WriteBackRange(g2, cs)

		// B relocates the live object. Its cache still holds X; only the
		// invalidate inside Relocate lets it copy the real content Y.
		var dst fabric.GPtr
		release := allocB.Relocate(g2, cs, func(ng fabric.GPtr) { dst = ng })
		nA.InvalidateRange(dst, cs)
		nA.Read(dst, buf)
		if !bytes.Equal(buf, y) {
			t.Logf("relocated copy at %#x holds stale content (size %d)", dst, cs)
			return false
		}
		release()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
