package dksync

import (
	"fmt"
	"runtime"

	"flacos/internal/fabric"
)

// MCSLock is a queue lock over the non-coherent fabric: each waiter spins
// on its OWN cache-line-sized queue node in global memory rather than on
// the lock word, so under contention each handoff touches exactly one
// waiter's line instead of stampeding every node onto one location — the
// classic remedy for the contention §2.2 describes, and the strongest
// member of the lock-based tier FlacDK offers.
//
// Queue-node layout (one line each): word 0 = locked flag (1 while the
// holder must wait), word 1 = next pointer (GPtr of the successor's node).
// All accesses use fabric atomics.
type MCSLock struct {
	tailG fabric.GPtr // atomic: GPtr of the last queue node, 0 = free
}

// MCSNode is one waiter's queue node. A node may be reused after Unlock
// returns, but never by two concurrent Lock calls.
type MCSNode struct {
	g fabric.GPtr
}

// NewMCSLock reserves the lock word.
func NewMCSLock(f *fabric.Fabric) *MCSLock {
	return &MCSLock{tailG: f.Reserve(fabric.LineSize, fabric.LineSize)}
}

// NewMCSNode reserves one waiter's queue node.
func NewMCSNode(f *fabric.Fabric) *MCSNode {
	return &MCSNode{g: f.Reserve(fabric.LineSize, fabric.LineSize)}
}

func (q *MCSNode) lockedG() fabric.GPtr { return q.g }
func (q *MCSNode) nextG() fabric.GPtr   { return q.g.Add(8) }

// Lock enqueues the caller's node and waits until it reaches the head.
func (l *MCSLock) Lock(n *fabric.Node, my *MCSNode) {
	n.AtomicStore64(my.lockedG(), 1)
	n.AtomicStore64(my.nextG(), 0)
	prev := n.Swap64(l.tailG, uint64(my.g))
	if prev == 0 {
		return // queue was empty: we hold the lock
	}
	// Link behind the previous tail, then spin on OUR OWN flag.
	n.AtomicStore64(fabric.GPtr(prev).Add(8), uint64(my.g))
	for n.AtomicLoad64(my.lockedG()) == 1 {
		runtime.Gosched()
	}
}

// Unlock passes the lock to the successor, or frees it if none.
func (l *MCSLock) Unlock(n *fabric.Node, my *MCSNode) {
	next := n.AtomicLoad64(my.nextG())
	if next == 0 {
		// No known successor: try to swing the tail back to free.
		if n.CAS64(l.tailG, uint64(my.g), 0) {
			return
		}
		// A successor is in the middle of enqueueing; wait for its link.
		for {
			next = n.AtomicLoad64(my.nextG())
			if next != 0 {
				break
			}
			runtime.Gosched()
		}
	}
	n.AtomicStore64(fabric.GPtr(next), 0) // release the successor
}

// Holder reports whether the lock is currently held (diagnostics only).
func (l *MCSLock) Held(n *fabric.Node) bool { return n.AtomicLoad64(l.tailG) != 0 }

// String identifies the lock for debugging.
func (l *MCSLock) String() string { return fmt.Sprintf("mcs@%v", l.tailG) }
