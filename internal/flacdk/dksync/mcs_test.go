package dksync

import (
	"strings"
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func TestMCSUncontended(t *testing.T) {
	f := rack(t, 1)
	l := NewMCSLock(f)
	n := f.Node(0)
	node := NewMCSNode(f)
	if l.Held(n) {
		t.Fatal("fresh lock held")
	}
	l.Lock(n, node)
	if !l.Held(n) {
		t.Fatal("lock not held after Lock")
	}
	l.Unlock(n, node)
	if l.Held(n) {
		t.Fatal("lock held after Unlock")
	}
	if !strings.HasPrefix(l.String(), "mcs@") {
		t.Fatalf("String = %q", l.String())
	}
}

func TestMCSMutualExclusionAcrossNodes(t *testing.T) {
	const nodes, perNode = 4, 250
	f := rack(t, nodes)
	l := NewMCSLock(f)
	data := f.Reserve(fabric.LineSize, fabric.LineSize)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(n *fabric.Node) {
			defer wg.Done()
			q := NewMCSNode(f)
			for j := 0; j < perNode; j++ {
				l.Lock(n, q)
				n.InvalidateRange(data, 8)
				v := n.Load64(data)
				n.Store64(data, v+1)
				n.FlushRange(data, 8)
				l.Unlock(n, q)
			}
		}(f.Node(i))
	}
	wg.Wait()
	n := f.Node(0)
	n.InvalidateRange(data, 8)
	if got := n.Load64(data); got != nodes*perNode {
		t.Fatalf("counter = %d, want %d", got, nodes*perNode)
	}
}

func TestMCSNodeReuse(t *testing.T) {
	f := rack(t, 1)
	l := NewMCSLock(f)
	n := f.Node(0)
	q := NewMCSNode(f)
	for i := 0; i < 100; i++ {
		l.Lock(n, q)
		l.Unlock(n, q)
	}
	if l.Held(n) {
		t.Fatal("lock leaked")
	}
}

func TestMCSFIFOHandoff(t *testing.T) {
	// Node A holds the lock; B then C enqueue. Releasing must serve B
	// before C (queue order), observable via a shared sequence counter.
	f := rack(t, 3)
	l := NewMCSLock(f)
	seq := f.Reserve(fabric.LineSize, fabric.LineSize)
	a, b, c := f.Node(0), f.Node(1), f.Node(2)
	qa, qb, qc := NewMCSNode(f), NewMCSNode(f), NewMCSNode(f)

	l.Lock(a, qa)
	var wg sync.WaitGroup
	order := make([]uint64, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Lock(b, qb)
		order[0] = b.Add64(seq, 1)
		l.Unlock(b, qb)
	}()
	// Ensure B is enqueued before C: wait until the tail moves off A.
	for a.AtomicLoad64(qaTail(l)) != uint64(qb.g) {
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.Lock(c, qc)
		order[1] = c.Add64(seq, 1)
		l.Unlock(c, qc)
	}()
	// Wait until C is enqueued behind B, then release.
	for a.AtomicLoad64(qaTail(l)) != uint64(qc.g) {
	}
	l.Unlock(a, qa)
	wg.Wait()
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("handoff order: b=%d c=%d (want FIFO b=1 c=2)", order[0], order[1])
	}
}

// qaTail exposes the tail word address for the FIFO test.
func qaTail(l *MCSLock) fabric.GPtr { return l.tailG }
