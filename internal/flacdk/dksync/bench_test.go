package dksync

import (
	"sync"
	"testing"

	"flacos/internal/fabric"
)

// Lock-variant benchmarks: wall-clock here measures simulator speed; the
// interesting comparison is the virtual-cost profile each variant leaves
// in the fabric ledger, reported as fabric-atomics-per-acquire.

func benchLockRack() *fabric.Fabric {
	return fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: 4})
}

func BenchmarkSpinLockUncontended(b *testing.B) {
	f := benchLockRack()
	l := NewSpinLock(f)
	n := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(n)
		l.Unlock(n)
	}
	reportAtomicsPerOp(b, f)
}

func BenchmarkTicketLockUncontended(b *testing.B) {
	f := benchLockRack()
	l := NewTicketLock(f)
	n := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(n)
		l.Unlock(n)
	}
	reportAtomicsPerOp(b, f)
}

func BenchmarkMCSLockUncontended(b *testing.B) {
	f := benchLockRack()
	l := NewMCSLock(f)
	n := f.Node(0)
	q := NewMCSNode(f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Lock(n, q)
		l.Unlock(n, q)
	}
	reportAtomicsPerOp(b, f)
}

func reportAtomicsPerOp(b *testing.B, f *fabric.Fabric) {
	b.Helper()
	s := f.RackStats()
	b.ReportMetric(float64(s.Atomics)/float64(b.N), "fabric-atomics/op")
}

// Contended variants: 4 nodes hammer one lock; MCS should issue far fewer
// atomic probes per acquisition than test-and-set spinning, because each
// waiter spins on its own line.
func contendedBench(b *testing.B, lock func(n *fabric.Node, worker int), unlock func(n *fabric.Node, worker int), f *fabric.Fabric) {
	b.Helper()
	const workers = 4
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := f.Node(w)
			for i := 0; i < per; i++ {
				lock(n, w)
				unlock(n, w)
			}
		}(w)
	}
	wg.Wait()
	reportAtomicsPerOp(b, f)
}

func BenchmarkSpinLockContended(b *testing.B) {
	f := benchLockRack()
	l := NewSpinLock(f)
	contendedBench(b,
		func(n *fabric.Node, _ int) { l.Lock(n) },
		func(n *fabric.Node, _ int) { l.Unlock(n) }, f)
}

func BenchmarkMCSLockContended(b *testing.B) {
	f := benchLockRack()
	l := NewMCSLock(f)
	qs := make([]*MCSNode, 4)
	for i := range qs {
		qs[i] = NewMCSNode(f)
	}
	contendedBench(b,
		func(n *fabric.Node, w int) { l.Lock(n, qs[w]) },
		func(n *fabric.Node, w int) { l.Unlock(n, qs[w]) }, f)
}

func BenchmarkLockedRegionCriticalSection(b *testing.B) {
	f := benchLockRack()
	r := NewLockedRegion(f, 256)
	n := f.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Do(n, func() {
			n.Store64(r.Data, n.Load64(r.Data)+1)
		})
	}
}
