// Package dksync is FlacDK's synchronization layer over the non-coherent
// fabric (paper §3.2).
//
// It provides the level-1/level-2 primitives: spin and ticket locks built on
// fabric atomics, sequence locks, and the LockedRegion discipline that makes
// lock-based critical sections *correct* on incoherent memory — at the cost
// the paper calls out: every critical section must invalidate the protected
// data on entry and flush it on exit, turning each section into multiple
// global-memory round trips. The replication, delegation and quiescence
// packages are the lock-free alternatives FlacOS actually prefers.
package dksync

import (
	"runtime"

	"flacos/internal/fabric"
)

// SpinLock is a test-and-set lock on one dedicated global cache line.
// It is correct on non-coherent memory because fabric atomics bypass the
// caches — but every acquire attempt is a full fabric round trip.
type SpinLock struct {
	g fabric.GPtr
}

// NewSpinLock reserves a cache line for the lock and returns it unlocked.
func NewSpinLock(f *fabric.Fabric) SpinLock {
	return SpinLock{g: f.Reserve(fabric.LineSize, fabric.LineSize)}
}

// SpinLockAt places a lock at an existing, zeroed, line-aligned address.
func SpinLockAt(g fabric.GPtr) SpinLock {
	if !g.AlignedTo(fabric.LineSize) {
		panic("dksync: SpinLockAt requires line alignment")
	}
	return SpinLock{g: g}
}

// Lock acquires the lock on behalf of node n, spinning with exponential
// backoff. The stored value records the owner node (id+1) for debugging.
func (l SpinLock) Lock(n *fabric.Node) {
	backoff := 1
	for !n.CAS64(l.g, 0, uint64(n.ID())+1) {
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff <<= 1
		}
	}
}

// TryLock attempts one acquisition and reports success.
func (l SpinLock) TryLock(n *fabric.Node) bool {
	return n.CAS64(l.g, 0, uint64(n.ID())+1)
}

// Unlock releases the lock. It panics if n does not hold it, because an
// unlock-by-non-owner is always a bug worth failing loudly on.
func (l SpinLock) Unlock(n *fabric.Node) {
	if !n.CAS64(l.g, uint64(n.ID())+1, 0) {
		panic("dksync: SpinLock.Unlock by non-owner")
	}
}

// Holder returns the node id currently holding the lock, or -1 if free.
func (l SpinLock) Holder(n *fabric.Node) int {
	v := n.AtomicLoad64(l.g)
	if v == 0 {
		return -1
	}
	return int(v - 1)
}

// TicketLock is a fair FIFO lock: two fabric words, next-ticket and
// now-serving, each on its own cache line.
type TicketLock struct {
	next    fabric.GPtr
	serving fabric.GPtr
}

// NewTicketLock reserves the lock's two cache lines.
func NewTicketLock(f *fabric.Fabric) TicketLock {
	return TicketLock{
		next:    f.Reserve(fabric.LineSize, fabric.LineSize),
		serving: f.Reserve(fabric.LineSize, fabric.LineSize),
	}
}

// Lock takes a ticket and spins until served.
func (l TicketLock) Lock(n *fabric.Node) {
	t := n.Add64(l.next, 1) - 1
	for n.AtomicLoad64(l.serving) != t {
		runtime.Gosched()
	}
}

// Unlock admits the next ticket holder.
func (l TicketLock) Unlock(n *fabric.Node) {
	n.Add64(l.serving, 1)
}

// SeqLock is a writer-versioned lock for read-mostly data: writers bump the
// version to odd on entry and even on exit; readers retry if the version was
// odd or changed across their read. Readers never write shared state.
type SeqLock struct {
	g fabric.GPtr
}

// NewSeqLock reserves the version word's cache line.
func NewSeqLock(f *fabric.Fabric) SeqLock {
	return SeqLock{g: f.Reserve(fabric.LineSize, fabric.LineSize)}
}

// WriteBegin enters the writer's critical section. Writers must already be
// mutually excluded (e.g. by a SpinLock) — SeqLock orders readers only.
func (l SeqLock) WriteBegin(n *fabric.Node) {
	v := n.Add64(l.g, 1)
	if v%2 == 0 {
		panic("dksync: SeqLock.WriteBegin with concurrent writer")
	}
	n.Fence()
}

// WriteEnd leaves the writer's critical section.
func (l SeqLock) WriteEnd(n *fabric.Node) {
	n.Fence()
	v := n.Add64(l.g, 1)
	if v%2 != 0 {
		panic("dksync: SeqLock.WriteEnd without WriteBegin")
	}
}

// ReadBegin returns a version token; spin until no writer is active.
func (l SeqLock) ReadBegin(n *fabric.Node) uint64 {
	for {
		v := n.AtomicLoad64(l.g)
		if v%2 == 0 {
			return v
		}
		runtime.Gosched()
	}
}

// ReadRetry reports whether a read section that began at version v must be
// retried because a writer intervened.
func (l SeqLock) ReadRetry(n *fabric.Node, v uint64) bool {
	n.Fence()
	return n.AtomicLoad64(l.g) != v
}

// LockedRegion couples a SpinLock with the cache-maintenance discipline a
// critical section needs on non-coherent memory: invalidate the protected
// range on entry (to observe other nodes' writes) and flush it on exit (to
// publish this node's writes before the lock is released).
//
// This is the paper's "existing lock-based approach": correct, but each
// section pays invalidate + flush of the whole protected range on top of
// the lock's fabric atomics. Ablation A quantifies exactly this cost.
type LockedRegion struct {
	lock SpinLock
	// Data is the protected global range.
	Data fabric.GPtr
	// Size is the protected range's length in bytes.
	Size uint64
}

// NewLockedRegion reserves size bytes of global memory plus a lock line.
func NewLockedRegion(f *fabric.Fabric, size uint64) *LockedRegion {
	return &LockedRegion{
		lock: NewSpinLock(f),
		Data: f.Reserve(fabric.AlignUp64(size, fabric.LineSize), fabric.LineSize),
		Size: size,
	}
}

// Do runs fn with the region locked and cache-consistent: fn sees the
// latest committed contents and its writes are published before unlock.
func (r *LockedRegion) Do(n *fabric.Node, fn func()) {
	r.lock.Lock(n)
	n.InvalidateRange(r.Data, r.Size)
	fn()
	n.FlushRange(r.Data, r.Size)
	r.lock.Unlock(n)
}

// DoRead runs fn with the region locked for reading: it invalidates on
// entry but skips the exit flush (fn must not write the region).
func (r *LockedRegion) DoRead(n *fabric.Node, fn func()) {
	r.lock.Lock(n)
	n.InvalidateRange(r.Data, r.Size)
	fn()
	r.lock.Unlock(n)
}
