package dksync

import (
	"sync"
	"testing"

	"flacos/internal/fabric"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 1 << 20, Nodes: nodes})
}

func TestSpinLockMutualExclusionAcrossNodes(t *testing.T) {
	f := rack(t, 4)
	r := NewLockedRegion(f, 8)
	const perNode = 200
	var wg sync.WaitGroup
	for i := 0; i < f.NumNodes(); i++ {
		wg.Add(1)
		go func(n *fabric.Node) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				r.Do(n, func() {
					v := n.Load64(r.Data)
					n.Store64(r.Data, v+1)
				})
			}
		}(f.Node(i))
	}
	wg.Wait()
	n := f.Node(0)
	var got uint64
	r.DoRead(n, func() { got = n.Load64(r.Data) })
	if got != uint64(f.NumNodes()*perNode) {
		t.Fatalf("counter = %d, want %d (lost updates => broken exclusion or cache discipline)",
			got, f.NumNodes()*perNode)
	}
}

func TestSpinLockTryLockAndHolder(t *testing.T) {
	f := rack(t, 2)
	l := NewSpinLock(f)
	a, b := f.Node(0), f.Node(1)
	if l.Holder(a) != -1 {
		t.Fatal("fresh lock should be free")
	}
	if !l.TryLock(a) {
		t.Fatal("TryLock on free lock failed")
	}
	if l.Holder(b) != 0 {
		t.Fatalf("Holder = %d, want 0", l.Holder(b))
	}
	if l.TryLock(b) {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock(a)
	if !l.TryLock(b) {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock(b)
}

func TestSpinLockUnlockByNonOwnerPanics(t *testing.T) {
	f := rack(t, 2)
	l := NewSpinLock(f)
	l.Lock(f.Node(0))
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock by non-owner should panic")
		}
		l.Unlock(f.Node(0))
	}()
	l.Unlock(f.Node(1))
}

func TestSpinLockAtAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned SpinLockAt should panic")
		}
	}()
	SpinLockAt(fabric.GPtr(8))
}

func TestTicketLockExclusionAndProgress(t *testing.T) {
	f := rack(t, 4)
	l := NewTicketLock(f)
	data := f.Reserve(fabric.LineSize, fabric.LineSize)
	const perNode = 150
	var wg sync.WaitGroup
	for i := 0; i < f.NumNodes(); i++ {
		wg.Add(1)
		go func(n *fabric.Node) {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				l.Lock(n)
				n.InvalidateRange(data, 8)
				v := n.Load64(data)
				n.Store64(data, v+1)
				n.FlushRange(data, 8)
				l.Unlock(n)
			}
		}(f.Node(i))
	}
	wg.Wait()
	n := f.Node(0)
	n.InvalidateRange(data, 8)
	if got := n.Load64(data); got != uint64(f.NumNodes()*perNode) {
		t.Fatalf("counter = %d, want %d", got, f.NumNodes()*perNode)
	}
}

func TestSeqLockReaderNeverSeesTornWrite(t *testing.T) {
	f := rack(t, 2)
	sl := NewSeqLock(f)
	// Two paired words that a writer always keeps equal. They are accessed
	// with fabric atomics so visibility is immediate; SeqLock must still
	// prevent a reader from observing the mid-update state a!=b.
	a := f.Reserve(fabric.LineSize, fabric.LineSize)
	b := f.Reserve(fabric.LineSize, fabric.LineSize)
	w, r := f.Node(0), f.Node(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= 300; i++ {
			sl.WriteBegin(w)
			w.AtomicStore64(a, i)
			w.AtomicStore64(b, i)
			sl.WriteEnd(w)
		}
	}()
	reads := 0
	for {
		select {
		case <-done:
			if reads == 0 {
				t.Log("no successful concurrent reads; timing-dependent but not a failure")
			}
			return
		default:
		}
		v := sl.ReadBegin(r)
		x := r.AtomicLoad64(a)
		y := r.AtomicLoad64(b)
		if !sl.ReadRetry(r, v) {
			if x != y {
				t.Fatalf("torn read: a=%d b=%d at version %d", x, y, v)
			}
			reads++
		}
	}
}

func TestSeqLockMisuse(t *testing.T) {
	f := rack(t, 1)
	sl := NewSeqLock(f)
	n := f.Node(0)
	sl.WriteBegin(n)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nested WriteBegin should panic")
			}
		}()
		sl.WriteBegin(n)
	}()
}

func TestLockedRegionPublishesAcrossNodes(t *testing.T) {
	f := rack(t, 2)
	r := NewLockedRegion(f, 128)
	a, b := f.Node(0), f.Node(1)
	r.Do(a, func() {
		buf := make([]byte, 128)
		for i := range buf {
			buf[i] = byte(i)
		}
		a.Write(r.Data, buf)
	})
	var got []byte
	r.DoRead(b, func() {
		got = make([]byte, 128)
		b.Read(r.Data, got)
	})
	for i, v := range got {
		if v != byte(i) {
			t.Fatalf("byte %d = %d", i, v)
		}
	}
}
