package reliability

import (
	"fmt"
	"hash/crc32"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/quiescence"
	"flacos/internal/flacdk/replication"
)

// Checkpointer stores double-buffered, checksummed snapshots in global
// memory. Writes alternate between two slots and publish the header with
// fabric atomics only after the data is home, so a crash mid-checkpoint
// leaves the previous generation intact and a torn write is detected by
// CRC. Because the slots live in global (interconnect-attached, crash-
// surviving) memory, any node can restore them — the basis of cross-node
// recovery and migration.
//
// Slot layout: one header line (word0: seq, word1: len<<32|crc32,
// word2: applied-index) followed by the data area.
type Checkpointer struct {
	fab     *fabric.Fabric
	node    *fabric.Node
	slots   [2]fabric.GPtr
	dataCap uint64
	seq     uint64
}

// NewCheckpointer reserves two checkpoint slots able to hold dataCap bytes.
func NewCheckpointer(f *fabric.Fabric, n *fabric.Node, dataCap uint64) *Checkpointer {
	c := &Checkpointer{fab: f, node: n, dataCap: dataCap}
	slotSize := fabric.LineSize + fabric.AlignUp64(dataCap, fabric.LineSize)
	c.slots[0] = f.Reserve(slotSize, fabric.LineSize)
	c.slots[1] = f.Reserve(slotSize, fabric.LineSize)
	return c
}

// Cap returns the largest snapshot the checkpointer can hold.
func (c *Checkpointer) Cap() uint64 { return c.dataCap }

// Save stores one snapshot tagged with appliedIdx (the operation-log cursor
// the snapshot reflects). If pin is non-nil the copy runs inside a
// quiescence pin, integrating with multi-version reclamation exactly as
// §3.2 prescribes: versions referenced by the data being checkpointed
// cannot be reclaimed mid-copy.
func (c *Checkpointer) Save(data []byte, appliedIdx uint64, pin *quiescence.Participant) {
	if uint64(len(data)) > c.dataCap {
		panic(fmt.Sprintf("reliability: snapshot %d exceeds checkpoint capacity %d", len(data), c.dataCap))
	}
	if pin != nil {
		pin.Pin()
		defer pin.Unpin()
	}
	c.seq++
	slot := c.slots[c.seq%2]
	n := c.node
	if len(data) > 0 {
		n.Write(slot.Add(fabric.LineSize), data)
		n.WriteBackRange(slot.Add(fabric.LineSize), uint64(len(data)))
	}
	crc := crc32.ChecksumIEEE(data)
	n.AtomicStore64(slot.Add(8), uint64(len(data))<<32|uint64(crc))
	n.AtomicStore64(slot.Add(16), appliedIdx)
	n.AtomicStore64(slot, c.seq) // header publish: highest seq wins
}

// Latest returns the newest valid snapshot readable by node n (which may
// be a different node than the writer — recovery after a crash). ok is
// false when no intact checkpoint exists.
func (c *Checkpointer) Latest(n *fabric.Node) (data []byte, appliedIdx uint64, ok bool) {
	type cand struct {
		seq  uint64
		slot fabric.GPtr
	}
	var cands []cand
	for _, slot := range c.slots {
		if seq := n.AtomicLoad64(slot); seq > 0 {
			cands = append(cands, cand{seq, slot})
		}
	}
	// Try newest first, fall back to the older generation on CRC mismatch.
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].seq > cands[best].seq {
				best = i
			}
		}
		slot := cands[best].slot
		meta := n.AtomicLoad64(slot.Add(8))
		ln := meta >> 32
		crc := uint32(meta)
		buf := make([]byte, ln)
		if ln > 0 {
			n.InvalidateRange(slot.Add(fabric.LineSize), ln)
			n.Read(slot.Add(fabric.LineSize), buf)
		}
		if crc32.ChecksumIEEE(buf) == crc {
			return buf, n.AtomicLoad64(slot.Add(16)), true
		}
		cands = append(cands[:best], cands[best+1:]...)
	}
	return nil, 0, false
}

// ReplicaState is a replicated state machine that also supports
// checkpoint-based recovery.
type ReplicaState interface {
	replication.StateMachine
	replication.Snapshotter
}

// CheckpointReplica snapshots a replica's state machine into c. The
// snapshot is taken under the replica's read path so it is consistent with
// its applied index.
func CheckpointReplica(c *Checkpointer, rep *replication.Replica, sm ReplicaState, pin *quiescence.Participant) {
	var data []byte
	var idx uint64
	rep.ReadLocal(func(replication.StateMachine) {
		data = sm.Snapshot()
	})
	idx = rep.AppliedIndex()
	c.Save(data, idx, pin)
}

// RecoverReplica rebuilds a crashed node's replica on node n: restore the
// newest intact checkpoint, verify the operation log still covers the gap,
// attach a replica at the checkpoint's cursor, and replay the suffix. This
// is the paper's "operation logs used for synchronization ... utilized to
// achieve state replay during fault recovery".
func RecoverReplica(l *replication.Log, n *fabric.Node, sm ReplicaState, c *Checkpointer) (*replication.Replica, error) {
	var from uint64
	if data, idx, ok := c.Latest(n); ok {
		sm.Restore(data)
		from = idx
	}
	if err := l.CheckReplayable(n, from); err != nil {
		return nil, fmt.Errorf("recover from checkpoint at %d: %w", from, err)
	}
	rep := l.ReplicaAt(n, sm, from)
	rep.Sync()
	return rep, nil
}
