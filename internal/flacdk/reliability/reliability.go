// Package reliability provides FlacDK's fault-tolerance mechanisms (paper
// §3.2): system monitoring, failure prediction, fault detection,
// checkpointing, and recovery. Per the paper's co-design principle, the
// mechanisms reuse synchronization state instead of adding redundancy of
// their own: checkpoints integrate with quiescence pins (a version being
// checkpointed cannot be reclaimed), and recovery replays the replication
// package's operation log.
package reliability

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"flacos/internal/fabric"
)

// Region identifies a guarded range of global memory.
type Region struct {
	G    fabric.GPtr
	Size uint64
}

// Scrubber detects silent corruption in global memory: Protect records a
// CRC of a region's home contents; ScrubOnce re-reads home memory (the
// device scrub path, bypassing all caches) and reports every region whose
// contents no longer match. Mutators must call Seal after legitimately
// updating a protected region.
type Scrubber struct {
	fab *fabric.Fabric

	mu   sync.Mutex
	sums map[Region]uint32

	scrubs   uint64
	detected uint64
}

// NewScrubber creates a scrubber for f.
func NewScrubber(f *fabric.Fabric) *Scrubber {
	return &Scrubber{fab: f, sums: make(map[Region]uint32)}
}

func (s *Scrubber) crcOf(r Region) uint32 {
	buf := make([]byte, r.Size)
	s.fab.ReadAtHome(r.G, buf)
	return crc32.ChecksumIEEE(buf)
}

// Protect starts guarding r with its current home contents as ground truth.
func (s *Scrubber) Protect(r Region) {
	sum := s.crcOf(r)
	s.mu.Lock()
	s.sums[r] = sum
	s.mu.Unlock()
}

// Seal refreshes r's recorded checksum after a legitimate update (the
// writer must have written the update back to home memory first).
func (s *Scrubber) Seal(r Region) { s.Protect(r) }

// Unprotect stops guarding r.
func (s *Scrubber) Unprotect(r Region) {
	s.mu.Lock()
	delete(s.sums, r)
	s.mu.Unlock()
}

// ScrubOnce verifies every protected region against home memory and
// returns the corrupted ones.
func (s *Scrubber) ScrubOnce() []Region {
	s.mu.Lock()
	regions := make([]Region, 0, len(s.sums))
	want := make([]uint32, 0, len(s.sums))
	for r, sum := range s.sums {
		regions = append(regions, r)
		want = append(want, sum)
	}
	s.mu.Unlock()

	var bad []Region
	for i, r := range regions {
		if s.crcOf(r) != want[i] {
			bad = append(bad, r)
		}
	}
	s.mu.Lock()
	s.scrubs++
	s.detected += uint64(len(bad))
	s.mu.Unlock()
	return bad
}

// Repair rewrites r's home contents from known-good data and reseals it.
func (s *Scrubber) Repair(r Region, data []byte) {
	if uint64(len(data)) != r.Size {
		panic(fmt.Sprintf("reliability: Repair data %d != region size %d", len(data), r.Size))
	}
	s.fab.WriteAtHome(r.G, data)
	s.Seal(r)
}

// Stats returns lifetime scrub passes and detected corruptions.
func (s *Scrubber) Stats() (scrubs, detected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubs, s.detected
}

// StartMonitor runs ScrubOnce every interval, invoking onFault for each
// corrupted region found. The returned stop function halts the monitor.
// This is the paper's "system monitoring" loop.
func (s *Scrubber) StartMonitor(interval time.Duration, onFault func(Region)) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				for _, r := range s.ScrubOnce() {
					onFault(r)
				}
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// Predictor forecasts failures from the stream of correctable-error
// observations: an exponentially weighted moving average of errors per
// observation window. Rising EWMA above a threshold is the paper's
// failure-prediction signal (e.g. schedule migration off a failing DIMM
// before it dies).
type Predictor struct {
	mu    sync.Mutex
	alpha float64
	rate  float64
	obs   uint64
}

// NewPredictor creates a predictor with smoothing factor alpha in (0,1]:
// higher alpha weighs recent windows more.
func NewPredictor(alpha float64) *Predictor {
	if alpha <= 0 || alpha > 1 {
		panic("reliability: alpha must be in (0,1]")
	}
	return &Predictor{alpha: alpha}
}

// Observe feeds one window's error count.
func (p *Predictor) Observe(errors uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.obs == 0 {
		p.rate = float64(errors)
	} else {
		p.rate = p.alpha*float64(errors) + (1-p.alpha)*p.rate
	}
	p.obs++
}

// Rate returns the smoothed errors-per-window estimate.
func (p *Predictor) Rate() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rate
}

// AtRisk reports whether the smoothed rate exceeds threshold.
func (p *Predictor) AtRisk(threshold float64) bool { return p.Rate() > threshold }
