package reliability

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"flacos/internal/fabric"
	"flacos/internal/flacdk/quiescence"
	"flacos/internal/flacdk/replication"
)

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 8 << 20, Nodes: nodes})
}

func TestScrubberDetectsBitFlip(t *testing.T) {
	f := rack(t, 1)
	n := f.Node(0)
	s := NewScrubber(f)
	g := f.Reserve(256, 64)
	data := bytes.Repeat([]byte{0xAB}, 256)
	n.Write(g, data)
	n.FlushRange(g, 256)

	r := Region{G: g, Size: 256}
	s.Protect(r)
	if bad := s.ScrubOnce(); len(bad) != 0 {
		t.Fatalf("clean region reported corrupt: %v", bad)
	}
	f.Faults().FlipBitAtHome(f, g.Add(64), 5)
	bad := s.ScrubOnce()
	if len(bad) != 1 || bad[0] != r {
		t.Fatalf("scrub = %v, want [%v]", bad, r)
	}
	scrubs, detected := s.Stats()
	if scrubs != 2 || detected != 1 {
		t.Fatalf("stats = %d/%d", scrubs, detected)
	}
	// Repair restores ground truth.
	s.Repair(r, data)
	if bad := s.ScrubOnce(); len(bad) != 0 {
		t.Fatalf("repaired region still corrupt: %v", bad)
	}
	got := make([]byte, 256)
	f.ReadAtHome(g, got)
	if !bytes.Equal(got, data) {
		t.Fatal("repair did not restore contents")
	}
}

func TestScrubberSealAfterLegitimateWrite(t *testing.T) {
	f := rack(t, 1)
	n := f.Node(0)
	s := NewScrubber(f)
	g := f.Reserve(64, 64)
	r := Region{G: g, Size: 64}
	s.Protect(r)
	n.Store64(g, 99)
	n.FlushRange(g, 64)
	if bad := s.ScrubOnce(); len(bad) != 1 {
		t.Fatal("unsealed legitimate write should look like corruption")
	}
	s.Seal(r)
	if bad := s.ScrubOnce(); len(bad) != 0 {
		t.Fatal("sealed region reported corrupt")
	}
	s.Unprotect(r)
	f.Faults().FlipBitAtHome(f, g, 1)
	if bad := s.ScrubOnce(); len(bad) != 0 {
		t.Fatal("unprotected region still scrubbed")
	}
}

func TestMonitorInvokesCallback(t *testing.T) {
	f := rack(t, 1)
	s := NewScrubber(f)
	g := f.Reserve(64, 64)
	r := Region{G: g, Size: 64}
	s.Protect(r)

	var mu sync.Mutex
	var hits []Region
	stop := s.StartMonitor(time.Millisecond, func(r Region) {
		mu.Lock()
		hits = append(hits, r)
		mu.Unlock()
	})
	defer stop()
	f.Faults().FlipBitAtHome(f, g, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := len(hits)
		mu.Unlock()
		if got > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never reported the fault")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPredictorEWMA(t *testing.T) {
	p := NewPredictor(0.5)
	p.Observe(0)
	if p.Rate() != 0 {
		t.Fatalf("rate = %v", p.Rate())
	}
	p.Observe(8) // 0.5*8 + 0.5*0 = 4
	if p.Rate() != 4 {
		t.Fatalf("rate = %v, want 4", p.Rate())
	}
	if p.AtRisk(5) {
		t.Fatal("below threshold reported at risk")
	}
	p.Observe(8) // 6
	if !p.AtRisk(5) {
		t.Fatal("above threshold not reported")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("alpha 0 should panic")
			}
		}()
		NewPredictor(0)
	}()
}

func TestCheckpointSaveLatest(t *testing.T) {
	f := rack(t, 2)
	c := NewCheckpointer(f, f.Node(0), 1024)
	if _, _, ok := c.Latest(f.Node(1)); ok {
		t.Fatal("empty checkpointer returned a snapshot")
	}
	c.Save([]byte("generation-1"), 10, nil)
	c.Save([]byte("generation-2"), 20, nil)
	c.Save([]byte("generation-3"), 30, nil)
	data, idx, ok := c.Latest(f.Node(1)) // read from the other node
	if !ok || string(data) != "generation-3" || idx != 30 {
		t.Fatalf("Latest = %q,%d,%v", data, idx, ok)
	}
	if c.Cap() != 1024 {
		t.Fatalf("Cap = %d", c.Cap())
	}
}

func TestCheckpointTornWriteFallsBack(t *testing.T) {
	f := rack(t, 1)
	n := f.Node(0)
	c := NewCheckpointer(f, n, 256)
	c.Save([]byte("good-generation"), 7, nil)
	c.Save([]byte("newer-generation"), 9, nil)
	// Corrupt the newer generation's data in home memory: its CRC check
	// must fail and Latest must fall back to the older slot.
	newerSlot := c.slots[c.seq%2]
	f.Faults().FlipBitAtHome(f, newerSlot.Add(fabric.LineSize), 3)
	data, idx, ok := c.Latest(n)
	if !ok || string(data) != "good-generation" || idx != 7 {
		t.Fatalf("fallback = %q,%d,%v", data, idx, ok)
	}
}

func TestCheckpointOversizedPanics(t *testing.T) {
	f := rack(t, 1)
	c := NewCheckpointer(f, f.Node(0), 64)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized snapshot should panic")
		}
	}()
	c.Save(make([]byte, 65), 0, nil)
}

// kvState is a ReplicaState for recovery tests: op 1 = put(8-byte value +
// key), returns previous value.
type kvState struct{ m map[string]uint64 }

func newKVState() *kvState { return &kvState{m: make(map[string]uint64)} }

func (k *kvState) Apply(op uint32, payload []byte) uint64 {
	if op == 1 {
		v := binary.LittleEndian.Uint64(payload)
		key := string(payload[8:])
		prev := k.m[key]
		k.m[key] = v
		return prev
	}
	return 0
}

func (k *kvState) Snapshot() []byte {
	var out []byte
	for key, v := range k.m {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(key)))
		binary.LittleEndian.PutUint64(hdr[4:], v)
		out = append(out, hdr[:]...)
		out = append(out, key...)
	}
	return out
}

func (k *kvState) Restore(b []byte) {
	k.m = make(map[string]uint64)
	for len(b) >= 12 {
		klen := binary.LittleEndian.Uint32(b[:4])
		v := binary.LittleEndian.Uint64(b[4:12])
		k.m[string(b[12:12+klen])] = v
		b = b[12+klen:]
	}
}

func put(r *replication.Replica, key string, v uint64) {
	p := make([]byte, 8+len(key))
	binary.LittleEndian.PutUint64(p, v)
	copy(p[8:], key)
	r.Execute(1, p)
}

func TestCrashRecoveryViaCheckpointAndLogReplay(t *testing.T) {
	f := rack(t, 2)
	log := replication.NewLog(f, 64)
	c := NewCheckpointer(f, f.Node(0), 4096)

	sm0 := newKVState()
	rep0 := log.Replica(f.Node(0), sm0)
	put(rep0, "a", 1)
	put(rep0, "b", 2)
	CheckpointReplica(c, rep0, sm0, nil)
	put(rep0, "c", 3) // after the checkpoint: must come from log replay
	put(rep0, "a", 9)

	// Node 0 dies. Its cache (and local replica) are gone; the log and the
	// checkpoint live in global memory.
	f.Node(0).Crash()

	sm1 := newKVState()
	rep1, err := RecoverReplica(log, f.Node(1), sm1, c)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	rep1.ReadLinearizable(func(replication.StateMachine) {})
	if sm1.m["a"] != 9 || sm1.m["b"] != 2 || sm1.m["c"] != 3 {
		t.Fatalf("recovered state = %v", sm1.m)
	}
}

func TestRecoveryWithoutCheckpointReplaysFromZero(t *testing.T) {
	f := rack(t, 2)
	log := replication.NewLog(f, 64)
	c := NewCheckpointer(f, f.Node(0), 4096) // never saved

	sm0 := newKVState()
	rep0 := log.Replica(f.Node(0), sm0)
	put(rep0, "only", 5)
	f.Node(0).Crash()

	sm1 := newKVState()
	if _, err := RecoverReplica(log, f.Node(1), sm1, c); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if sm1.m["only"] != 5 {
		t.Fatalf("recovered = %v", sm1.m)
	}
}

func TestRecoveryDetectsTruncatedLog(t *testing.T) {
	f := rack(t, 2)
	log := replication.NewLog(f, 8)
	c := NewCheckpointer(f, f.Node(0), 4096) // no checkpoint -> replay from 0

	sm0 := newKVState()
	rep0 := log.Replica(f.Node(0), sm0)
	// Wrap the log: entries 0.. recycled, replay-from-0 is impossible.
	for i := 0; i < 20; i++ {
		put(rep0, "k", uint64(i))
	}
	sm1 := newKVState()
	_, err := RecoverReplica(log, f.Node(1), sm1, c)
	if !errors.Is(err, replication.ErrLogTruncated) {
		t.Fatalf("err = %v, want ErrLogTruncated", err)
	}
}

func TestCheckpointWithQuiescencePin(t *testing.T) {
	f := rack(t, 2)
	d := quiescence.NewDomain(f, 2)
	ckPart := d.Participant(f.Node(0), 0)
	other := d.Participant(f.Node(1), 1)
	c := NewCheckpointer(f, f.Node(0), 256)

	// While Save holds the pin, the epoch must not advance twice.
	done := make(chan struct{})
	blocked := false
	go func() {
		defer close(done)
		// Generate load: try advancing continuously.
		for i := 0; i < 1000; i++ {
			other.TryAdvance()
		}
	}()
	ckPart.Pin()
	e := d.Epoch(f.Node(0))
	<-done
	if d.Epoch(f.Node(0)) > e+1 {
		t.Fatal("epoch advanced twice past a checkpoint pin")
	}
	ckPart.Unpin()
	blocked = true
	_ = blocked
	c.Save([]byte("x"), 1, ckPart) // must pin/unpin without deadlock
	if _, _, ok := c.Latest(f.Node(1)); !ok {
		t.Fatal("checkpoint missing")
	}
}
