// Package replication implements FlacDK's replication-based synchronization
// (paper §3.2): a shared operation log in global memory plus one local
// replica of the data structure per node, in the style of NrOS/node
// replication.
//
// The common path touches only node-local memory: reads run against the
// local replica, and updates append one log entry then replay the log into
// the local replica. Cross-node agreement needs no locks on shared data and
// no cache coherence — the log is published with fabric atomics (which
// bypass the caches) for control words, and explicit write-back/invalidate
// for payload lines.
//
// Log entry layout (two cache lines per entry):
//
//	line 0 (control, fabric atomics only):
//	    word 0: state     — idx+1 once the entry at log index idx is ready
//	    word 1: op|len    — opcode (high 32 bits) and payload length (low 32)
//	line 1 (payload, plain access + cache maintenance):
//	    up to 64 bytes of operation payload
//
// The state word's value is unique per log index, so a slot can be reused
// when the log wraps without an ABA hazard: consumers of index i wait for
// state == i+1 and can never confuse it with the previous occupant's i+1-cap.
package replication

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"flacos/internal/fabric"
)

// PayloadMax is the largest operation payload an entry can carry. Larger
// arguments live in shared memory and the payload carries a GPtr to them.
const PayloadMax = fabric.LineSize

const entrySize = 2 * fabric.LineSize

// StateMachine is the replicated data structure. Apply must be
// deterministic: every replica applies the same operation sequence and must
// converge to the same state. The returned value is meaningful only to the
// node that issued the operation (e.g. "previous value" for a KV put).
type StateMachine interface {
	Apply(op uint32, payload []byte) uint64
}

// Snapshotter is optionally implemented by state machines that support
// checkpoint-based recovery (used by flacdk/reliability): Snapshot
// serializes the full state, Restore replaces the state.
type Snapshotter interface {
	Snapshot() []byte
	Restore([]byte)
}

// Log is the shared operation log. One Log is created in global memory and
// every node attaches a Replica to it.
type Log struct {
	fab      *fabric.Fabric
	capacity uint64
	tailG    fabric.GPtr   // atomic: next log index to allocate
	regG     fabric.GPtr   // atomic bitmap: which nodes have live replicas
	appliedG []fabric.GPtr // per node, atomic: entries applied so far
	entries  fabric.GPtr
}

// NewLog reserves global memory for a log of capEntries entries (rounded up
// to a power of two, minimum 8) shared by all nodes of f.
func NewLog(f *fabric.Fabric, capEntries uint64) *Log {
	capE := uint64(8)
	for capE < capEntries {
		capE <<= 1
	}
	if f.NumNodes() > 64 {
		panic("replication: at most 64 nodes (registration bitmap is one word)")
	}
	l := &Log{
		fab:      f,
		capacity: capE,
		tailG:    f.Reserve(fabric.LineSize, fabric.LineSize),
		regG:     f.Reserve(fabric.LineSize, fabric.LineSize),
		entries:  f.Reserve(capE*entrySize, fabric.LineSize),
	}
	l.appliedG = make([]fabric.GPtr, f.NumNodes())
	for i := range l.appliedG {
		l.appliedG[i] = f.Reserve(fabric.LineSize, fabric.LineSize)
	}
	return l
}

// Capacity returns the log's entry capacity.
func (l *Log) Capacity() uint64 { return l.capacity }

func (l *Log) stateG(idx uint64) fabric.GPtr {
	return l.entries.Add((idx % l.capacity) * entrySize)
}
func (l *Log) metaG(idx uint64) fabric.GPtr    { return l.stateG(idx).Add(8) }
func (l *Log) payloadG(idx uint64) fabric.GPtr { return l.stateG(idx).Add(fabric.LineSize) }

// Tail returns the log's current tail index as seen by node n.
func (l *Log) Tail(n *fabric.Node) uint64 { return n.AtomicLoad64(l.tailG) }

// minApplied returns the slowest registered replica's applied index. Nodes
// without a live replica do not gate log recycling. With no replicas at
// all, recycling is unconstrained.
func (l *Log) minApplied(n *fabric.Node) uint64 {
	reg := n.AtomicLoad64(l.regG)
	min := ^uint64(0)
	for i, g := range l.appliedG {
		if reg&(1<<uint(i)) == 0 {
			continue
		}
		if a := n.AtomicLoad64(g); a < min {
			min = a
		}
	}
	return min
}

// register marks node id as having a live replica.
func (l *Log) register(n *fabric.Node, id int) {
	for {
		old := n.AtomicLoad64(l.regG)
		if old&(1<<uint(id)) != 0 || n.CAS64(l.regG, old, old|1<<uint(id)) {
			return
		}
	}
}

// Deregister removes node id from the recycle constraint — fault handling
// calls it when a node dies so its stalled applied counter cannot wedge the
// rack's appenders. A later ReplicaAt/Replica for the node re-registers it.
func (l *Log) Deregister(n *fabric.Node, id int) {
	for {
		old := n.AtomicLoad64(l.regG)
		if old&(1<<uint(id)) == 0 || n.CAS64(l.regG, old, old&^(1<<uint(id))) {
			return
		}
	}
}

// Replica is one node's attachment to the log: a local copy of the state
// machine plus the replay cursor. The zero value is not usable; create
// replicas with Log.Replica.
type Replica struct {
	log  *Log
	node *fabric.Node

	mu           sync.Mutex // guards sm and localApplied (node-local, coherent)
	sm           StateMachine
	localApplied uint64
}

// Replica attaches a fresh replica for node n, seeded with sm (which must
// represent the state after zero operations, identically on every node).
func (l *Log) Replica(n *fabric.Node, sm StateMachine) *Replica {
	n.AtomicStore64(l.appliedG[n.ID()], 0)
	l.register(n, n.ID())
	return &Replica{log: l, node: n, sm: sm}
}

// ReplicaAt attaches a replica whose state machine already reflects the
// first appliedIdx log operations (restored from a checkpoint). Recovery
// paths use it so replay starts at the checkpoint's cursor instead of 0.
func (l *Log) ReplicaAt(n *fabric.Node, sm StateMachine, appliedIdx uint64) *Replica {
	r := &Replica{log: l, node: n, sm: sm, localApplied: appliedIdx}
	n.AtomicStore64(l.appliedG[n.ID()], appliedIdx)
	l.register(n, n.ID())
	return r
}

// ErrLogTruncated reports that recovery needs log entries that have already
// been recycled: the checkpoint is too old for the log window.
var ErrLogTruncated = errLogTruncated{}

type errLogTruncated struct{}

func (errLogTruncated) Error() string {
	return "replication: log entries needed for replay have been recycled"
}

// CheckReplayable reports whether every entry in [from, Tail) is still
// resident in the log window (i.e. a replica restored at cursor `from` can
// catch up by replay).
func (l *Log) CheckReplayable(n *fabric.Node, from uint64) error {
	tail := l.Tail(n)
	for idx := from; idx < tail; idx++ {
		st := n.AtomicLoad64(l.stateG(idx))
		if st > idx+1 {
			return ErrLogTruncated // slot already reused by a later index
		}
	}
	return nil
}

// Node returns the fabric node this replica runs on.
func (r *Replica) Node() *fabric.Node { return r.node }

// AppliedIndex returns how many log entries this replica has applied.
func (r *Replica) AppliedIndex() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.localApplied
}

// Execute appends one operation to the shared log and replays the log until
// the operation has been applied locally, returning its Apply result. It is
// linearizable across the rack.
func (r *Replica) Execute(op uint32, payload []byte) uint64 {
	if len(payload) > PayloadMax {
		panic(fmt.Sprintf("replication: payload %d exceeds max %d", len(payload), PayloadMax))
	}
	l, n := r.log, r.node
	idx := n.Add64(l.tailG, 1) - 1

	// Wait for the slot to be recycled: every replica must have applied the
	// previous occupant. Help ourselves along by syncing while we wait so a
	// self-lag never deadlocks the append.
	for idx >= l.minApplied(n)+l.capacity {
		r.Sync()
		runtime.Gosched()
	}

	if len(payload) > 0 {
		n.Write(l.payloadG(idx), payload)
		n.WriteBackRange(l.payloadG(idx), uint64(len(payload)))
	}
	n.AtomicStore64(l.metaG(idx), uint64(op)<<32|uint64(len(payload)))
	n.AtomicStore64(l.stateG(idx), idx+1) // publish

	// Replay until our own entry is applied; capture its local result.
	return r.syncUntil(idx + 1)
}

// Sync replays published log entries into the local replica, stopping at
// the first entry that has been reserved but not yet published (so it never
// blocks on a stalled appender — including this node's own pending append).
// Nodes that only read must still call Sync (or run a pump) so the log can
// recycle.
func (r *Replica) Sync() {
	l, n := r.log, r.node
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		idx := r.localApplied
		if n.AtomicLoad64(l.stateG(idx)) != idx+1 {
			return
		}
		r.applyLocked(idx)
	}
}

// syncUntil applies entries until localApplied >= target, returning the
// Apply result of entry target-1 (the caller's own op for Execute). Unlike
// Sync it waits for unpublished-but-reserved entries, which is required for
// linearizability.
func (r *Replica) syncUntil(target uint64) uint64 {
	l, n := r.log, r.node
	var result uint64
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.localApplied < target {
		idx := r.localApplied
		// The entry at idx was reserved by some appender; wait for publish.
		for n.AtomicLoad64(l.stateG(idx)) != idx+1 {
			runtime.Gosched()
		}
		res := r.applyLocked(idx)
		if idx == target-1 {
			result = res
		}
	}
	return result
}

// applyLocked applies the published entry at idx to the local replica and
// advances the applied cursor. Caller holds r.mu and has verified that the
// entry's state word equals idx+1.
func (r *Replica) applyLocked(idx uint64) uint64 {
	l, n := r.log, r.node
	meta := n.AtomicLoad64(l.metaG(idx))
	op := uint32(meta >> 32)
	plen := uint64(uint32(meta))
	var payload []byte
	if plen > 0 {
		payload = make([]byte, plen)
		n.InvalidateRange(l.payloadG(idx), plen)
		n.Read(l.payloadG(idx), payload)
	}
	res := r.sm.Apply(op, payload)
	r.localApplied = idx + 1
	n.AtomicStore64(l.appliedG[n.ID()], r.localApplied)
	return res
}

// ReadLinearizable observes the log tail, replays up to it, then runs fn on
// the local replica. The read reflects every operation that completed
// before ReadLinearizable was called.
func (r *Replica) ReadLinearizable(fn func(StateMachine)) {
	t := r.log.Tail(r.node)
	r.syncUntil(t)
	r.mu.Lock()
	fn(r.sm)
	r.mu.Unlock()
}

// ReadLocal runs fn on the local replica without consulting the shared log:
// the fastest read, possibly stale. This is the paper's common path — all
// node-local memory, zero fabric traffic.
func (r *Replica) ReadLocal(fn func(StateMachine)) {
	r.mu.Lock()
	fn(r.sm)
	r.mu.Unlock()
}

// StartPump launches a goroutine that calls Sync every interval, keeping an
// otherwise-idle replica from stalling log recycling. The returned stop
// function halts the pump and waits for it to exit.
func (r *Replica) StartPump(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				r.Sync()
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// EntryAt returns the opcode and payload of log index idx if it is still
// resident in the log window, for recovery replay. ok is false if the entry
// has been overwritten (idx too old) or not yet published.
func (l *Log) EntryAt(n *fabric.Node, idx uint64) (op uint32, payload []byte, ok bool) {
	if n.AtomicLoad64(l.stateG(idx)) != idx+1 {
		return 0, nil, false
	}
	meta := n.AtomicLoad64(l.metaG(idx))
	op = uint32(meta >> 32)
	plen := uint64(uint32(meta))
	if plen > 0 {
		payload = make([]byte, plen)
		n.InvalidateRange(l.payloadG(idx), plen)
		n.Read(l.payloadG(idx), payload)
	}
	// Re-check the state word: the slot might have been recycled while we
	// were copying the payload.
	if n.AtomicLoad64(l.stateG(idx)) != idx+1 {
		return 0, nil, false
	}
	return op, payload, true
}
