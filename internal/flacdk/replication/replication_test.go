package replication

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"flacos/internal/fabric"
)

// counterSM is a trivial replicated state machine: op 1 adds the payload's
// first 8 bytes to the counter; Apply returns the counter's new value.
type counterSM struct{ v uint64 }

func (c *counterSM) Apply(op uint32, payload []byte) uint64 {
	if op == 1 {
		c.v += binary.LittleEndian.Uint64(payload)
	}
	return c.v
}

// kvSM is a replicated string->uint64 map: op 1 = put (payload: 8-byte value
// + key bytes), op 2 = delete (payload: key bytes). Apply returns the
// previous value.
type kvSM struct{ m map[string]uint64 }

func newKV() *kvSM { return &kvSM{m: make(map[string]uint64)} }

func (k *kvSM) Apply(op uint32, payload []byte) uint64 {
	switch op {
	case 1:
		val := binary.LittleEndian.Uint64(payload)
		key := string(payload[8:])
		prev := k.m[key]
		k.m[key] = val
		return prev
	case 2:
		key := string(payload)
		prev := k.m[key]
		delete(k.m, key)
		return prev
	}
	return 0
}

func (k *kvSM) Snapshot() []byte {
	var out []byte
	for key, v := range k.m {
		var hdr [12]byte
		binary.LittleEndian.PutUint32(hdr[:4], uint32(len(key)))
		binary.LittleEndian.PutUint64(hdr[4:], v)
		out = append(out, hdr[:]...)
		out = append(out, key...)
	}
	return out
}

func (k *kvSM) Restore(b []byte) {
	k.m = make(map[string]uint64)
	for len(b) >= 12 {
		klen := binary.LittleEndian.Uint32(b[:4])
		v := binary.LittleEndian.Uint64(b[4:12])
		key := string(b[12 : 12+klen])
		k.m[key] = v
		b = b[12+klen:]
	}
}

func putPayload(key string, v uint64) []byte {
	p := make([]byte, 8+len(key))
	binary.LittleEndian.PutUint64(p, v)
	copy(p[8:], key)
	return p
}

func rack(t *testing.T, nodes int) *fabric.Fabric {
	t.Helper()
	return fabric.New(fabric.Config{GlobalSize: 4 << 20, Nodes: nodes})
}

func TestExecuteAndConvergence(t *testing.T) {
	f := rack(t, 2)
	log := NewLog(f, 64)
	r0 := log.Replica(f.Node(0), &counterSM{})
	r1 := log.Replica(f.Node(1), &counterSM{})

	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 5)
	if got := r0.Execute(1, buf[:]); got != 5 {
		t.Fatalf("Execute result = %d, want 5", got)
	}
	binary.LittleEndian.PutUint64(buf[:], 3)
	if got := r1.Execute(1, buf[:]); got != 8 {
		t.Fatalf("Execute on node 1 = %d, want 8 (must see node 0's op)", got)
	}
	// Node 0 hasn't replayed node 1's op yet; a local read may be stale,
	// a linearizable read must not be.
	r0.ReadLinearizable(func(sm StateMachine) {
		if v := sm.(*counterSM).v; v != 8 {
			t.Fatalf("linearizable read = %d, want 8", v)
		}
	})
}

func TestReadLocalMayBeStaleUntilSync(t *testing.T) {
	f := rack(t, 2)
	log := NewLog(f, 64)
	r0 := log.Replica(f.Node(0), &counterSM{})
	r1 := log.Replica(f.Node(1), &counterSM{})

	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 7)
	r0.Execute(1, buf[:])

	r1.ReadLocal(func(sm StateMachine) {
		if v := sm.(*counterSM).v; v != 0 {
			t.Fatalf("stale local read = %d, want 0 before Sync", v)
		}
	})
	r1.Sync()
	r1.ReadLocal(func(sm StateMachine) {
		if v := sm.(*counterSM).v; v != 7 {
			t.Fatalf("local read after Sync = %d, want 7", v)
		}
	})
	if r1.AppliedIndex() != 1 {
		t.Fatalf("AppliedIndex = %d", r1.AppliedIndex())
	}
}

func TestConcurrentExecutorsAllNodesConverge(t *testing.T) {
	const nodes, perNode = 4, 300
	f := rack(t, nodes)
	log := NewLog(f, 128) // force many wraps
	reps := make([]*Replica, nodes)
	for i := range reps {
		reps[i] = log.Replica(f.Node(i), &counterSM{})
		// A replica that stops executing must still pump, or the log cannot
		// recycle past it (the same liveness requirement node replication
		// has); workers finish at different times, so run pumps.
		stop := reps[i].StartPump(100 * time.Microsecond)
		defer stop()
	}
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], 1)
			for j := 0; j < perNode; j++ {
				r.Execute(1, buf[:])
			}
		}(reps[i])
	}
	wg.Wait()
	want := uint64(nodes * perNode)
	for i, r := range reps {
		r.ReadLinearizable(func(sm StateMachine) {
			if v := sm.(*counterSM).v; v != want {
				t.Fatalf("node %d converged to %d, want %d", i, v, want)
			}
		})
	}
}

func TestKVReplicationAcrossNodes(t *testing.T) {
	f := rack(t, 3)
	log := NewLog(f, 64)
	reps := make([]*Replica, 3)
	for i := range reps {
		reps[i] = log.Replica(f.Node(i), newKV())
	}
	reps[0].Execute(1, putPayload("alpha", 10))
	reps[1].Execute(1, putPayload("beta", 20))
	if prev := reps[2].Execute(1, putPayload("alpha", 30)); prev != 10 {
		t.Fatalf("put returned prev = %d, want 10", prev)
	}
	reps[0].Execute(2, []byte("beta"))
	for i, r := range reps {
		r.ReadLinearizable(func(sm StateMachine) {
			kv := sm.(*kvSM)
			if kv.m["alpha"] != 30 {
				t.Fatalf("node %d alpha = %d", i, kv.m["alpha"])
			}
			if _, ok := kv.m["beta"]; ok {
				t.Fatalf("node %d still has beta", i)
			}
		})
	}
}

func TestLogWrapRecyclesSlots(t *testing.T) {
	f := rack(t, 2)
	log := NewLog(f, 8) // tiny: every 8 appends wrap
	r0 := log.Replica(f.Node(0), &counterSM{})
	r1 := log.Replica(f.Node(1), &counterSM{})
	stop := r1.StartPump(time.Millisecond)
	defer stop()

	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], 1)
	for i := 0; i < 100; i++ {
		r0.Execute(1, buf[:])
	}
	r0.ReadLinearizable(func(sm StateMachine) {
		if v := sm.(*counterSM).v; v != 100 {
			t.Fatalf("counter = %d, want 100", v)
		}
	})
	if log.Capacity() != 8 {
		t.Fatalf("Capacity = %d", log.Capacity())
	}
}

func TestEntryAt(t *testing.T) {
	f := rack(t, 1)
	log := NewLog(f, 16)
	r := log.Replica(f.Node(0), newKV())
	r.Execute(1, putPayload("k", 9))

	op, payload, ok := log.EntryAt(f.Node(0), 0)
	if !ok || op != 1 {
		t.Fatalf("EntryAt(0) = op %d ok %v", op, ok)
	}
	if binary.LittleEndian.Uint64(payload) != 9 || string(payload[8:]) != "k" {
		t.Fatalf("payload = %x", payload)
	}
	if _, _, ok := log.EntryAt(f.Node(0), 5); ok {
		t.Fatal("EntryAt beyond tail should not be ok")
	}
}

func TestPayloadTooLargePanics(t *testing.T) {
	f := rack(t, 1)
	log := NewLog(f, 16)
	r := log.Replica(f.Node(0), &counterSM{})
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload should panic")
		}
	}()
	r.Execute(1, make([]byte, PayloadMax+1))
}

func TestEmptyPayloadOp(t *testing.T) {
	f := rack(t, 2)
	log := NewLog(f, 16)
	sm0 := &countOpsSM{}
	r0 := log.Replica(f.Node(0), sm0)
	r1 := log.Replica(f.Node(1), &countOpsSM{})
	r0.Execute(9, nil)
	r1.ReadLinearizable(func(sm StateMachine) {
		if sm.(*countOpsSM).n != 1 {
			t.Fatal("empty-payload op not replicated")
		}
	})
}

type countOpsSM struct{ n int }

func (c *countOpsSM) Apply(op uint32, payload []byte) uint64 {
	c.n++
	return uint64(c.n)
}

func TestSnapshotterRoundTrip(t *testing.T) {
	kv := newKV()
	kv.Apply(1, putPayload("x", 1))
	kv.Apply(1, putPayload("y", 2))
	snap := kv.Snapshot()
	kv2 := newKV()
	kv2.Restore(snap)
	if kv2.m["x"] != 1 || kv2.m["y"] != 2 || len(kv2.m) != 2 {
		t.Fatalf("restored map = %v", kv2.m)
	}
}

func TestReadLinearizableSeesOwnNodeConcurrentWrites(t *testing.T) {
	// A writer goroutine and reader goroutine on different nodes: every
	// linearizable read must observe a monotonically non-decreasing counter.
	f := rack(t, 2)
	log := NewLog(f, 64)
	w := log.Replica(f.Node(0), &counterSM{})
	r := log.Replica(f.Node(1), &counterSM{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], 1)
		for i := 0; i < 200; i++ {
			w.Execute(1, buf[:])
		}
	}()
	var last uint64
	for {
		select {
		case <-done:
			r.ReadLinearizable(func(sm StateMachine) {
				if v := sm.(*counterSM).v; v != 200 {
					t.Errorf("final = %d, want 200", v)
				}
			})
			return
		default:
		}
		r.ReadLinearizable(func(sm StateMachine) {
			v := sm.(*counterSM).v
			if v < last {
				t.Fatalf("linearizable read went backwards: %d < %d", v, last)
			}
			last = v
		})
	}
}
