package replication

import (
	"encoding/binary"
	"testing"

	"flacos/internal/fabric"
)

func BenchmarkExecuteSingleReplica(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 16 << 20, Nodes: 1})
	log := NewLog(f, 4096)
	r := log.Replica(f.Node(0), &counterSM{})
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Execute(1, payload[:])
	}
}

func BenchmarkExecuteTwoReplicasLockstep(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 16 << 20, Nodes: 2})
	log := NewLog(f, 4096)
	r0 := log.Replica(f.Node(0), &counterSM{})
	r1 := log.Replica(f.Node(1), &counterSM{})
	var payload [8]byte
	binary.LittleEndian.PutUint64(payload[:], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r0.Execute(1, payload[:])
		r1.Sync()
	}
}

func BenchmarkReadLocal(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 16 << 20, Nodes: 1})
	log := NewLog(f, 64)
	r := log.Replica(f.Node(0), &counterSM{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReadLocal(func(StateMachine) {})
	}
}

func BenchmarkReadLinearizable(b *testing.B) {
	f := fabric.New(fabric.Config{GlobalSize: 16 << 20, Nodes: 1})
	log := NewLog(f, 64)
	r := log.Replica(f.Node(0), &counterSM{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ReadLinearizable(func(StateMachine) {})
	}
}
