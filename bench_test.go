package flacos_test

// One benchmark per table/figure of the paper plus one per ablation, each
// wrapping the same experiment code cmd/flacbench runs. The interesting
// output is the custom metrics (virtual-ns latencies and headline ratios
// reported via b.ReportMetric), which are deterministic; wall-clock ns/op
// only reflects how fast the host simulates.
//
// Run: go test -bench=. -benchmem .

import (
	"testing"

	"flacos/internal/experiments"
)

func reportRatios(b *testing.B, res *experiments.Result) {
	b.Helper()
	for k, v := range res.Ratios {
		b.ReportMetric(v, "x:"+sanitize(k))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkFig4RedisLatency regenerates Figure 4: Redis SET/GET latency
// over FlacOS IPC vs the TCP/IP baseline at 64 B and 4 KiB values.
func BenchmarkFig4RedisLatency(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(experiments.Fig4Config{
			Requests:   500,
			ValueSizes: []int{64, 4096},
		})
	}
	reportRatios(b, res)
}

// BenchmarkContainerStartup regenerates the §4.2 container-startup
// experiment (cold vs FlacOS shared page cache vs hot), at 1/64 of the
// paper's image scale so each iteration stays seconds-long; the reported
// speedup ratios are scale-invariant (the registry bandwidth scales with
// the image).
func BenchmarkContainerStartup(b *testing.B) {
	cfg := experiments.DefaultContainer()
	cfg.ImageBytes = 64 << 20
	cfg.RegistryBytesPerNS = 0.045 / 8
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Container(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkSyncPrimitives regenerates ablation A: lock-based vs FlacDK
// synchronization on the non-coherent fabric.
func BenchmarkSyncPrimitives(b *testing.B) {
	cfg := experiments.SyncConfig{Ops: 2000, NodeCounts: []int{2, 8}, ReadPcts: []int{0, 90}}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.SyncAblation(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkPageCacheSharing regenerates ablation B: shared vs per-node
// page caches (rack memory use and device traffic).
func BenchmarkPageCacheSharing(b *testing.B) {
	cfg := experiments.PageCacheConfig{Nodes: 4, Files: 8, PagesPer: 32, ReadLoops: 2}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.PageCacheAblation(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkFaultBoxRecovery regenerates ablation C: vertical fault-box
// recovery vs horizontal per-subsystem recovery.
func BenchmarkFaultBoxRecovery(b *testing.B) {
	cfg := experiments.FaultBoxConfig{AppCounts: []int{2, 16}, PagesEach: 8}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.FaultBoxAblation(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkIPCTransports regenerates ablation D: echo round trips over
// TCP, RDMA, FlacOS IPC, and migration RPC.
func BenchmarkIPCTransports(b *testing.B) {
	cfg := experiments.IPCConfig{Rounds: 500, Payloads: []int{64, 4096, 65536}}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.IPCAblation(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkPageDedup regenerates ablation E: content-based deduplication
// over global memory.
func BenchmarkPageDedup(b *testing.B) {
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.DedupAblation(experiments.DefaultDedup())
	}
	reportRatios(b, res)
}

// BenchmarkDensityRouting regenerates ablation F: density-aware invocation
// routing vs pinned placement under container interference.
func BenchmarkDensityRouting(b *testing.B) {
	cfg := experiments.DensityConfig{Fillers: 8, Invokes: 200}
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.DensityAblation(cfg)
	}
	reportRatios(b, res)
}

// BenchmarkSchedPlacement regenerates ablation G: locality-aware vs
// random task placement over the global run queue, plus crash
// re-dispatch through lease expiry.
func BenchmarkSchedPlacement(b *testing.B) {
	cfg := experiments.DefaultSched()
	cfg.Tasks = 120
	cfg.CrashTasks = 24
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.SchedAblation(cfg)
	}
	reportRatios(b, res)
}
