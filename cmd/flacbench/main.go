// Command flacbench regenerates every table and figure of the FlacOS
// paper's evaluation, plus the ablations behind its design claims.
//
// Usage:
//
//	flacbench -experiment all          # everything, paper-scale
//	flacbench -experiment fig4         # Redis latency, IPC vs TCP
//	flacbench -experiment container    # §4.2 container startup
//	flacbench -experiment sync         # ablation A: sync methods
//	flacbench -experiment pagecache    # ablation B: shared page cache
//	flacbench -experiment faultbox     # ablation C: fault box recovery
//	flacbench -experiment ipc          # ablation D: transports
//	flacbench -experiment dedup        # ablation E: page dedup
//	flacbench -experiment density      # ablation F: density-aware routing
//	flacbench -experiment sched        # ablation G: coordinated scheduling
//	flacbench -experiment redisrack    # rack-shared Redis: 1 vs N serving nodes
//	flacbench -experiment redisscale   # open-loop scaling to 16 nodes + hot-key combining
//	flacbench -experiment tiering      # hotness-tiered placement daemon vs static tiers
//	flacbench -experiment trace        # flight-recorder overhead budget
//	flacbench -experiment membership   # failure detection vs per-subsystem recovery
//	flacbench -experiment health       # gray-failure drain vs liveness-only baseline
//	flacbench -experiment fabric       # fabric per-op costs + ranged fast-path gates
//	flacbench -experiment torture      # seeded rack-wide fault-sweep matrix
//	flacbench -experiment torture -seed 42            # replay one failing seed
//	flacbench -experiment torture -torture-break ring-invalidate  # checker self-test
//	flacbench -list                    # list experiments, one per line
//	flacbench -quick                   # smaller workloads, same shapes
//
// The torture matrix exits nonzero if any sweep fails and writes the
// failing reports (seed + event trace) to torture-failures.txt for CI
// artifact upload. With -torture-break it inverts: the run must FAIL
// (the deliberately broken path must be caught) or flacbench exits 1.
//
// The redisrack experiment also exits nonzero on a stale, torn or
// backwards cross-node read, or a multi-node speedup under its gate.
// The redisscale experiment exits nonzero on any integrity violation,
// when hot-key combining misses its speedup gate at the gated node
// count, or when achieved throughput fails to track offered load below
// saturation.
// The tiering experiment exits nonzero on a stale, torn or lost record,
// a daemon/static speedup under its gate, a daemon that never moved a
// page, or achieved throughput failing to track offered load below
// saturation.
// The membership experiment exits nonzero on a zombie write leaking
// through a generation fence, a detection/recovery timeout, a lost or
// double-completed task, or membership recovery failing to beat the
// lease-expiry baseline.
// The health experiment exits nonzero when the anomaly-driven drain or
// rejoin never completes, a zombie write leaks through the early
// (pre-death) or post-crash generation fence, the liveness-only
// baseline declares the gray (alive, slow) node dead, exactly-once
// breaks, or proactive draining misses its tail-improvement gate.
// With -bench-json, experiments that publish machine-readable headline
// numbers write them to BENCH_<name>.json for cross-PR tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"flacos/internal/experiments"
	"flacos/internal/torture"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run (fig4|container|sync|pagecache|faultbox|ipc|dedup|density|sched|redisrack|redisscale|tiering|trace|membership|health|fabric|torture|all)")
	quick := flag.Bool("quick", false, "run reduced workloads (CI-sized, same shapes)")
	list := flag.Bool("list", false, "list available experiments and exit")
	seed := flag.Int64("seed", 0, "torture: replay a single seed instead of the sweep")
	tortureBreak := flag.String("torture-break", "", "torture: enable a deliberately broken sync path (ring-invalidate|shootdown|drain-fence); the run must then be caught as FAIL")
	tortureWorkload := flag.String("torture-workload", "", "torture: restrict the matrix to one workload (ds|sched|fs|memsys|redisrack|membership|health)")
	benchJSON := flag.Bool("bench-json", false, "write each experiment's machine-readable headline to BENCH_<name>.json")
	flag.Parse()

	runners := map[string]func(quick bool) *experiments.Result{
		"fig4": func(q bool) *experiments.Result {
			cfg := experiments.DefaultFig4()
			if q {
				cfg.Requests = 300
			}
			return experiments.Fig4(cfg)
		},
		"container": func(q bool) *experiments.Result {
			cfg := experiments.DefaultContainer()
			if q {
				cfg.ImageBytes = 64 << 20
				cfg.RegistryBytesPerNS = 0.045 / 8
			}
			return experiments.Container(cfg)
		},
		"sync": func(q bool) *experiments.Result {
			cfg := experiments.DefaultSync()
			if q {
				cfg.Ops = 800
			}
			return experiments.SyncAblation(cfg)
		},
		"pagecache": func(q bool) *experiments.Result {
			cfg := experiments.DefaultPageCache()
			if q {
				cfg.Files, cfg.PagesPer = 4, 16
			}
			return experiments.PageCacheAblation(cfg)
		},
		"faultbox": func(q bool) *experiments.Result {
			cfg := experiments.DefaultFaultBox()
			if q {
				cfg.AppCounts = []int{2, 8}
			}
			return experiments.FaultBoxAblation(cfg)
		},
		"ipc": func(q bool) *experiments.Result {
			cfg := experiments.DefaultIPC()
			if q {
				cfg.Rounds = 300
			}
			return experiments.IPCAblation(cfg)
		},
		"dedup": func(q bool) *experiments.Result {
			return experiments.DedupAblation(experiments.DefaultDedup())
		},
		"density": func(q bool) *experiments.Result {
			cfg := experiments.DefaultDensity()
			if q {
				cfg.Invokes = 100
			}
			return experiments.DensityAblation(cfg)
		},
		"sched": func(q bool) *experiments.Result {
			cfg := experiments.DefaultSched()
			if q {
				cfg.Tasks = 120
				cfg.CrashTasks = 24
			}
			return experiments.SchedAblation(cfg)
		},
	}
	order := []string{"fig4", "container", "sync", "pagecache", "faultbox", "ipc", "dedup", "density", "sched", "redisrack", "redisscale", "tiering", "trace", "membership", "health", "fabric", "torture"}

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok || *exp == "torture" || *exp == "trace" || *exp == "redisrack" || *exp == "redisscale" || *exp == "tiering" || *exp == "membership" || *exp == "health" || *exp == "fabric" {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "flacbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	exitCode := 0
	for _, name := range selected {
		start := time.Now()
		var res *experiments.Result
		if name == "torture" {
			var failed bool
			res, failed = runTorture(*quick, *seed, *tortureBreak, *tortureWorkload)
			if failed {
				exitCode = 1
			}
		} else if name == "redisrack" {
			cfg := experiments.DefaultRedisRack()
			if *quick {
				cfg.Batches = 80
				cfg.LatencyOps = 60
			}
			var failed bool
			res, failed = experiments.RedisRack(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: redisrack observed a stale/torn/backwards read or missed its multi-node speedup gate")
				exitCode = 1
			}
		} else if name == "redisscale" {
			cfg := experiments.DefaultRedisScale()
			if *quick {
				cfg.NodeCounts = []int{1, 2, 4}
				cfg.CombineNodes = 4
				cfg.Rounds = 10
				cfg.OpsPerRound = 32
				// At 4 nodes and a tenth of the ops, fixed sweep costs
				// amortize over far less fan-in; the smoke bar proves
				// combining still wins, the full run enforces 1.5x.
				cfg.CombineGate = 1.1
			}
			var failed bool
			res, failed = experiments.RedisScale(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: redisscale observed an integrity violation, missed the combining speedup gate, or failed to track offered load below saturation")
				exitCode = 1
			}
		} else if name == "tiering" {
			cfg := experiments.DefaultTiering()
			if *quick {
				// A sixty-fourth of the span and a twenty-fifth of the ops:
				// the same Zipf shape, but fixed per-move costs amortize over
				// far fewer accesses, so the smoke bar proves the daemon
				// still wins while the full run enforces 1.3x.
				cfg.SpanPages = 1 << 14
				cfg.Ops = 120_000
				cfg.Rounds = 12
				cfg.LocalPagesPerNode = 1024
				cfg.Gate = 1.15
			}
			var failed bool
			res, failed = experiments.Tiering(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: tiering observed a stale/torn/lost record, missed its daemon/static speedup gate, never moved a page, or failed to track offered load below saturation")
				exitCode = 1
			}
		} else if name == "membership" {
			cfg := experiments.DefaultMembership()
			if *quick {
				cfg.Rounds = 3
				cfg.TasksPerRound = 40
			}
			var failed bool
			res, failed = experiments.Membership(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: membership experiment leaked a zombie write, timed out detecting/recovering, lost exactly-once, or did not beat the lease-expiry baseline")
				exitCode = 1
			}
		} else if name == "health" {
			cfg := experiments.DefaultHealth()
			if *quick {
				// A third of the tasks per ramp level; the ramp itself (and
				// with it the accounting-derived bench headline) is identical
				// to the full run, so BENCH_health.json never drifts with -quick.
				cfg.TasksPerLevel = 80
			}
			var failed bool
			res, failed = experiments.Health(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: health experiment failed its drain/rejoin, leaked a zombie write through a fence, false-killed the gray baseline node, broke exactly-once, or missed its tail gate")
				exitCode = 1
			}
		} else if name == "fabric" {
			cfg := experiments.DefaultFabric()
			if *quick {
				// Shorter wall loops and no hooked-miss gate: the virtual
				// cost rows (and with them BENCH_fabric.json) come from
				// single deterministic charges, so the artifact is byte-
				// identical to the full run's.
				cfg.HitReps, cfg.MissReps, cfg.AtomicReps = 40_000, 10_000, 20_000
				cfg.RangedReps = 1_000
				cfg.GateHookDispatch = false
			}
			var failed bool
			res, failed = experiments.Fabric(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: fabric experiment missed its ranged speedup gate, diverged from the per-line virtual cost model, or hook dispatch cost nothing over the no-hook fence path")
				exitCode = 1
			}
		} else if name == "trace" {
			cfg := experiments.DefaultTrace()
			if *quick {
				cfg.EmitEvents = 20_000
				cfg.Tasks = 150
				cfg.FSOps = 80
			}
			var failed bool
			res, failed = experiments.Trace(cfg)
			if failed {
				fmt.Fprintln(os.Stderr, "flacbench: trace experiment exceeded its overhead budget or dropped events")
				exitCode = 1
			}
		} else {
			res = runners[name](*quick)
		}
		fmt.Println(res.String())
		if *benchJSON {
			if res.Bench == nil {
				// An explicitly requested artifact that doesn't exist is an
				// error, not a silent pass; under -experiment all only the
				// experiments that publish headlines write files.
				if *exp != "all" {
					fmt.Fprintf(os.Stderr, "flacbench: -bench-json: %s publishes no bench headline\n", name)
					exitCode = 1
				}
			} else if err := writeBenchJSON(res.Bench); err != nil {
				fmt.Fprintf(os.Stderr, "flacbench: could not write bench JSON for %s: %v\n", name, err)
				exitCode = 1
			}
		}
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
	os.Exit(exitCode)
}

// writeBenchJSON dumps one experiment's headline numbers to
// BENCH_<name>.json — the machine-readable artifact CI uploads so the
// bench trajectory is tracked across PRs.
func writeBenchJSON(b *experiments.Bench) error {
	if err := b.Validate(); err != nil {
		return fmt.Errorf("refusing to write malformed headline: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", b.Name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flacbench: bench headline written to %s\n", path)
	return nil
}

// runTorture executes the torture matrix with the CLI's replay/break
// overrides and handles its pass/fail contract: normally any failing
// sweep makes flacbench exit nonzero and lands in torture-failures.txt;
// under -torture-break the matrix MUST fail (the planted bug must be
// caught), so a clean run is the error.
func runTorture(quick bool, seed int64, brk, workload string) (*experiments.Result, bool) {
	cfg := experiments.DefaultTorture()
	if quick {
		cfg.Seeds = []int64{1, 7}
		cfg.OpsPerClient = 120
		cfg.Events = 4
	}
	if seed != 0 {
		cfg.Seeds = []int64{seed}
	}
	cfg.Break = brk
	if workload != "" {
		cfg.Workloads = []string{workload}
	}
	res, failures := experiments.Torture(cfg)

	if brk != "" {
		if len(failures) == 0 {
			fmt.Fprintf(os.Stderr, "flacbench: broken path %q was NOT caught by any sweep\n", brk)
			return res, true
		}
		fmt.Printf("broken path %q caught by %d sweep(s), as required\n", brk, len(failures))
		// Still dump the flight-recorder extracts: a planted-bug run is a
		// cheap way to eyeball what the recorder captures around a failure.
		writeTraceArtifacts(failures)
		return res, false
	}
	if len(failures) > 0 {
		f, err := os.Create("torture-failures.txt")
		if err == nil {
			for _, rep := range failures {
				fmt.Fprintln(f, rep.String())
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "flacbench: %d torture sweep(s) failed; reports written to torture-failures.txt\n", len(failures))
		} else {
			fmt.Fprintf(os.Stderr, "flacbench: %d torture sweep(s) failed (could not write report file: %v)\n", len(failures), err)
		}
		writeTraceArtifacts(failures)
		for _, rep := range failures {
			fmt.Fprint(os.Stderr, rep.String())
		}
		return res, true
	}
	return res, false
}

// writeTraceArtifacts dumps each failing sweep's merged flight-recorder
// extract next to torture-failures.txt: the human timeline as
// torture-trace-<workload>-seed<N>.txt and the Chrome trace_event JSON
// (chrome://tracing, ui.perfetto.dev) as the matching .json.
func writeTraceArtifacts(failures []*torture.Report) {
	for _, rep := range failures {
		if rep.TraceTimeline == "" && rep.TraceJSON == nil {
			continue
		}
		base := fmt.Sprintf("torture-trace-%s-seed%d", rep.Workload, rep.Seed)
		if rep.TraceTimeline != "" {
			if err := os.WriteFile(base+".txt", []byte(rep.TraceTimeline), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flacbench: could not write %s.txt: %v\n", base, err)
				continue
			}
		}
		if rep.TraceJSON != nil {
			if err := os.WriteFile(base+".json", rep.TraceJSON, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "flacbench: could not write %s.json: %v\n", base, err)
				continue
			}
		}
		fmt.Fprintf(os.Stderr, "flacbench: rack trace for %s seed %d written to %s.{txt,json}\n",
			rep.Workload, rep.Seed, base)
	}
}
