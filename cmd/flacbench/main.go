// Command flacbench regenerates every table and figure of the FlacOS
// paper's evaluation, plus the ablations behind its design claims.
//
// Usage:
//
//	flacbench -experiment all          # everything, paper-scale
//	flacbench -experiment fig4         # Redis latency, IPC vs TCP
//	flacbench -experiment container    # §4.2 container startup
//	flacbench -experiment sync         # ablation A: sync methods
//	flacbench -experiment pagecache    # ablation B: shared page cache
//	flacbench -experiment faultbox     # ablation C: fault box recovery
//	flacbench -experiment ipc          # ablation D: transports
//	flacbench -experiment dedup        # ablation E: page dedup
//	flacbench -experiment density      # ablation F: density-aware routing
//	flacbench -experiment sched        # ablation G: coordinated scheduling
//	flacbench -list                    # list experiments, one per line
//	flacbench -quick                   # smaller workloads, same shapes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flacos/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run (fig4|container|sync|pagecache|faultbox|ipc|dedup|density|sched|all)")
	quick := flag.Bool("quick", false, "run reduced workloads (CI-sized, same shapes)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	runners := map[string]func(quick bool) *experiments.Result{
		"fig4": func(q bool) *experiments.Result {
			cfg := experiments.DefaultFig4()
			if q {
				cfg.Requests = 300
			}
			return experiments.Fig4(cfg)
		},
		"container": func(q bool) *experiments.Result {
			cfg := experiments.DefaultContainer()
			if q {
				cfg.ImageBytes = 64 << 20
				cfg.RegistryBytesPerNS = 0.045 / 8
			}
			return experiments.Container(cfg)
		},
		"sync": func(q bool) *experiments.Result {
			cfg := experiments.DefaultSync()
			if q {
				cfg.Ops = 800
			}
			return experiments.SyncAblation(cfg)
		},
		"pagecache": func(q bool) *experiments.Result {
			cfg := experiments.DefaultPageCache()
			if q {
				cfg.Files, cfg.PagesPer = 4, 16
			}
			return experiments.PageCacheAblation(cfg)
		},
		"faultbox": func(q bool) *experiments.Result {
			cfg := experiments.DefaultFaultBox()
			if q {
				cfg.AppCounts = []int{2, 8}
			}
			return experiments.FaultBoxAblation(cfg)
		},
		"ipc": func(q bool) *experiments.Result {
			cfg := experiments.DefaultIPC()
			if q {
				cfg.Rounds = 300
			}
			return experiments.IPCAblation(cfg)
		},
		"dedup": func(q bool) *experiments.Result {
			return experiments.DedupAblation(experiments.DefaultDedup())
		},
		"density": func(q bool) *experiments.Result {
			cfg := experiments.DefaultDensity()
			if q {
				cfg.Invokes = 100
			}
			return experiments.DensityAblation(cfg)
		},
		"sched": func(q bool) *experiments.Result {
			cfg := experiments.DefaultSched()
			if q {
				cfg.Tasks = 120
				cfg.CrashTasks = 24
			}
			return experiments.SchedAblation(cfg)
		},
	}
	order := []string{"fig4", "container", "sync", "pagecache", "faultbox", "ipc", "dedup", "density", "sched"}

	if *list {
		for _, name := range order {
			fmt.Println(name)
		}
		return
	}

	var selected []string
	if *exp == "all" {
		selected = order
	} else if _, ok := runners[*exp]; ok {
		selected = []string{*exp}
	} else {
		fmt.Fprintf(os.Stderr, "flacbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	for _, name := range selected {
		start := time.Now()
		res := runners[name](*quick)
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %.1fs wall time)\n\n", name, time.Since(start).Seconds())
	}
}
