// Command rackctl boots a simulated FlacOS rack and runs a short guided
// tour: shared files, cross-node IPC, a shared address space, a fault-box
// crash/recovery, and the rack's fabric statistics. It is the smoke test
// for the whole stack in one binary.
package main

import (
	"flag"
	"fmt"
	"os"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/memsys"
)

func main() {
	nodes := flag.Int("nodes", 2, "number of nodes in the rack")
	memMB := flag.Uint64("global-mb", 256, "global memory size in MiB")
	flag.Parse()

	rack := core.Boot(core.Config{Nodes: *nodes, GlobalMemory: *memMB << 20})
	fmt.Printf("booted FlacOS rack: %d nodes, %d MiB global memory\n\n",
		rack.Nodes(), rack.Fabric.Size()>>20)

	step := func(name string, fn func() error) {
		fmt.Printf("== %s\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "rackctl: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	step("shared file system", func() error {
		a, b := rack.OS(0), rack.OS(1%rack.Nodes())
		id, err := a.Mount.Create("/etc/rack.conf")
		if err != nil {
			return err
		}
		a.Mount.Write(id, 0, []byte("nodes=all share this file\n"))
		buf := make([]byte, 64)
		n, err := b.Mount.Read(id, 0, buf)
		if err != nil {
			return err
		}
		fmt.Printf("node %d reads what node %d wrote: %q\n", b.Node.ID(), a.Node.ID(), buf[:n])
		fmt.Printf("shared page cache holds %d pages rack-wide\n", rack.FS.CachedPages(a.Node))
		return nil
	})

	step("zero-copy IPC", func() error {
		a, b := rack.OS(0), rack.OS(1%rack.Nodes())
		l, err := a.Endpoint.Bind("tour.echo")
		if err != nil {
			return err
		}
		defer l.Close()
		go func() {
			c := l.Accept()
			buf := make([]byte, 256)
			if n, err := c.Recv(buf); err == nil {
				c.Send(buf[:n])
			}
		}()
		c, err := b.Endpoint.Connect("tour.echo")
		if err != nil {
			return err
		}
		defer c.Close()
		c.Send([]byte("ping through global memory"))
		buf := make([]byte, 256)
		n, err := c.Recv(buf)
		if err != nil {
			return err
		}
		fmt.Printf("echo: %q\n", buf[:n])
		return nil
	})

	step("rack-wide shared address space", func() error {
		s := rack.NewSpace()
		m0 := rack.OS(0).Attach(s)
		m1 := rack.OS(1 % rack.Nodes()).Attach(s)
		if err := m0.MMap(0x100000, 1, memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
			return err
		}
		if err := m0.Write(0x100000, []byte("one VA space, many nodes")); err != nil {
			return err
		}
		buf := make([]byte, 24)
		if err := m1.Read(0x100000, buf); err != nil {
			return err
		}
		fmt.Printf("node %d via shared page table: %q\n", m1.Node().ID(), buf)
		return nil
	})

	step("fault box crash and recovery", func() error {
		b, err := rack.Boxes.Create("tour.app", rack.Fabric.Node(0), faultbox.Config{
			HeapPages: 4, StackPages: 2, Criticality: 1,
		}, nil)
		if err != nil {
			return err
		}
		b.MMU().Write(faultbox.HeapVA, []byte("critical state"))
		if err := b.Checkpoint(); err != nil {
			return err
		}
		rack.Fabric.Node(0).Crash()
		fmt.Println("node 0 crashed; recovering the box on node 1...")
		target := rack.Fabric.Node(1 % rack.Nodes())
		nb, err := b.RecoverOn(target, nil, nil)
		if err != nil {
			return err
		}
		buf := make([]byte, 14)
		nb.MMU().Read(faultbox.HeapVA, buf)
		fmt.Printf("recovered on node %d: %q\n", nb.Node().ID(), buf)
		rack.Fabric.Node(0).Restart()
		return nil
	})

	step("fabric statistics", func() error {
		for i := 0; i < rack.Nodes(); i++ {
			s := rack.Fabric.Node(i).Stats()
			fmt.Printf("node %d: loads=%d stores=%d misses=%d writebacks=%d atomics=%d virtual=%s\n",
				i, s.Loads, s.Stores, s.Misses, s.WriteBacks, s.Atomics,
				fmtNS(s.VirtualNS))
		}
		return nil
	})
}

func fmtNS(ns uint64) string {
	switch {
	case ns < 1_000_000:
		return fmt.Sprintf("%dus", ns/1000)
	default:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	}
}

var _ = fabric.LineSize
