// Command benchdiff compares committed bench baselines against freshly
// produced candidates and fails CI on regressions, turning the
// BENCH_<name>.json artifacts from snapshots into an enforced trajectory.
//
// Usage:
//
//	benchdiff baseline.json candidate.json            # one pair
//	benchdiff -baseline-dir . -candidate-dir out/     # every BENCH_*.json
//
// Rules, per metric, expressed as a regression fraction against the
// baseline (improvements never fail):
//
//   - ops_per_sec (and per-row achieved throughput): lower is worse;
//     fails beyond -fail-ops (default 10%).
//   - p99_ns (and per-row / per-op latencies, including virtual costs):
//     higher is worse; fails beyond -fail-p99 (default 5%).
//   - per-op wall_ns: compared only when BOTH sides carry it (committed
//     artifacts are virtual-only; wall rows appear in local comparisons);
//     fails beyond -fail-wall (default 10%).
//   - p50_ns: warns only — medians jitter, tails gate.
//   - a regression past -warn-frac of its threshold (default half) but
//     under the threshold prints a WARN and still passes.
//   - a tracked op or row present in the baseline but missing from the
//     candidate FAILS: coverage is part of the trajectory. New candidate
//     rows are reported and pass.
//
// Benches named in -advisory are fully compared and reported but never
// set a failing exit code — for wall-derived artifacts whose absolute
// numbers are host-dependent (membership, redisrack).
//
// Exit codes: 0 pass (possibly with warnings), 1 regression or missing
// coverage, 2 malformed input — an artifact that fails Bench.Validate is
// refused outright rather than "compared", so a zeroed candidate can
// never pass as "no regression".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"flacos/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type rules struct {
	failOps  float64
	failP99  float64
	failWall float64
	warnFrac float64
	advisory map[string]bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseDir := fs.String("baseline-dir", "", "directory holding baseline BENCH_*.json files")
	candDir := fs.String("candidate-dir", "", "directory holding candidate BENCH_*.json files (same names)")
	failOps := fs.Float64("fail-ops", 0.10, "failing throughput regression fraction")
	failP99 := fs.Float64("fail-p99", 0.05, "failing p99/virtual latency regression fraction")
	failWall := fs.Float64("fail-wall", 0.10, "failing wall-ns regression fraction")
	warnFrac := fs.Float64("warn-frac", 0.5, "fraction of a failing threshold that starts the warn band")
	advisory := fs.String("advisory", "", "comma-separated bench names compared report-only (never fail)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	r := rules{failOps: *failOps, failP99: *failP99, failWall: *failWall,
		warnFrac: *warnFrac, advisory: map[string]bool{}}
	for _, name := range strings.Split(*advisory, ",") {
		if name = strings.TrimSpace(name); name != "" {
			r.advisory[name] = true
		}
	}

	type pair struct{ base, cand string }
	var pairs []pair
	switch {
	case *baseDir != "" && *candDir != "":
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "benchdiff: positional files and -baseline-dir/-candidate-dir are mutually exclusive")
			return 2
		}
		matches, err := filepath.Glob(filepath.Join(*baseDir, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(stderr, "benchdiff: no BENCH_*.json baselines in %s\n", *baseDir)
			return 2
		}
		sort.Strings(matches)
		for _, m := range matches {
			pairs = append(pairs, pair{m, filepath.Join(*candDir, filepath.Base(m))})
		}
	case fs.NArg() == 2:
		pairs = []pair{{fs.Arg(0), fs.Arg(1)}}
	default:
		fmt.Fprintln(stderr, "benchdiff: need either two files or -baseline-dir and -candidate-dir")
		fs.Usage()
		return 2
	}

	exit := 0
	for _, p := range pairs {
		base, err := loadBench(p.base)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: refusing baseline %s: %v\n", p.base, err)
			return 2
		}
		cand, err := loadBench(p.cand)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: refusing candidate %s: %v\n", p.cand, err)
			return 2
		}
		verdict := compare(base, cand, r, stdout)
		if verdict > exit {
			exit = verdict
		}
	}
	if exit == 0 {
		fmt.Fprintln(stdout, "benchdiff: no failing regressions")
	}
	return exit
}

// loadBench reads and validates one artifact. Validation reuses the same
// Bench.Validate that gates flacbench's writer: an artifact malformed
// enough that flacbench would have refused to write it is refused here
// too, instead of being compared field-by-garbage-field.
func loadBench(path string) (*experiments.Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b experiments.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("malformed JSON: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("malformed artifact: %w", err)
	}
	return &b, nil
}

// compare reports every metric pair of one bench and returns its exit
// contribution (0 pass/warn, 1 fail).
func compare(base, cand *experiments.Bench, r rules, out io.Writer) int {
	if base.Name != cand.Name {
		fmt.Fprintf(out, "FAIL  %s: candidate is named %q\n", base.Name, cand.Name)
		return 1
	}
	adv := r.advisory[base.Name]
	failed := false
	check := func(metric string, baseV, candV, tol float64, higherBetter bool) {
		var frac float64 // regression fraction; negative means improvement
		if higherBetter {
			frac = (baseV - candV) / baseV
		} else {
			frac = (candV - baseV) / baseV
		}
		status := "ok   "
		switch {
		case frac > tol:
			status = "FAIL "
			failed = true
		case frac > tol*r.warnFrac:
			status = "WARN "
		}
		fmt.Fprintf(out, "%s %s/%s: baseline %.6g candidate %.6g (%+.1f%%)\n",
			status, base.Name, metric, baseV, candV, frac*100)
	}
	warnOnly := func(metric string, baseV, candV, tol float64) {
		frac := (candV - baseV) / baseV
		status := "ok   "
		if frac > tol {
			status = "WARN "
		}
		fmt.Fprintf(out, "%s %s/%s: baseline %.6g candidate %.6g (%+.1f%%, warn-only)\n",
			status, base.Name, metric, baseV, candV, frac*100)
	}

	check("ops_per_sec", base.OpsPerSec, cand.OpsPerSec, r.failOps, true)
	check("p99_ns", base.P99NS, cand.P99NS, r.failP99, false)
	warnOnly("p50_ns", base.P50NS, cand.P50NS, r.failP99)

	// Sweep rows, matched by (nodes, offered load).
	rowKey := func(nodes int, load float64) string { return fmt.Sprintf("nodes=%d,load=%g", nodes, load) }
	candRows := map[string]int{}
	for i, row := range cand.Rows {
		candRows[rowKey(row.Nodes, row.OfferedLoad)] = i
	}
	for _, row := range base.Rows {
		key := rowKey(row.Nodes, row.OfferedLoad)
		ci, ok := candRows[key]
		if !ok {
			fmt.Fprintf(out, "FAIL  %s/row[%s]: tracked row missing from candidate\n", base.Name, key)
			failed = true
			continue
		}
		crow := cand.Rows[ci]
		check("row["+key+"].achieved", row.AchievedOpsPerSec, crow.AchievedOpsPerSec, r.failOps, true)
		check("row["+key+"].p99_ns", float64(row.P99NS), float64(crow.P99NS), r.failP99, false)
		delete(candRows, key)
	}
	for key := range candRows {
		fmt.Fprintf(out, "note  %s/row[%s]: new in candidate\n", base.Name, key)
	}

	// Per-op cost rows, matched by name. Virtual costs follow the p99
	// rule; wall costs follow the wall rule and only when both sides
	// carry one (committed baselines are virtual-only).
	candOps := map[string]experiments.OpCost{}
	for _, op := range cand.Ops {
		candOps[op.Op] = op
	}
	for _, op := range base.Ops {
		cop, ok := candOps[op.Op]
		if !ok {
			fmt.Fprintf(out, "FAIL  %s/op[%s]: tracked op missing from candidate\n", base.Name, op.Op)
			failed = true
			continue
		}
		check("op["+op.Op+"].virtual_ns", op.VirtualNS, cop.VirtualNS, r.failP99, false)
		if op.WallNS > 0 && cop.WallNS > 0 {
			check("op["+op.Op+"].wall_ns", op.WallNS, cop.WallNS, r.failWall, false)
		}
		delete(candOps, op.Op)
	}
	for name := range candOps {
		fmt.Fprintf(out, "note  %s/op[%s]: new in candidate\n", base.Name, name)
	}

	if failed {
		if adv {
			fmt.Fprintf(out, "ADVISORY %s: regressions above would fail, but this bench is advisory (wall-derived numbers are host-dependent)\n", base.Name)
			return 0
		}
		return 1
	}
	return 0
}
