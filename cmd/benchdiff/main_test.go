package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// td points a fixture name at cmd/benchdiff/testdata.
func td(name string) string { return filepath.Join("testdata", name) }

// runDiff drives run() exactly as main does and returns exit code plus
// combined output.
func runDiff(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestPassAndNewOpsAreNotRegressions(t *testing.T) {
	code, out := runDiff(t, td("baseline.json"), td("cand_pass.json"))
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	if !strings.Contains(out, "op[wbr-64]: new in candidate") {
		t.Fatalf("new candidate op not reported:\n%s", out)
	}
	if strings.Contains(out, "FAIL") || strings.Contains(out, "WARN") {
		t.Fatalf("clean improvement flagged:\n%s", out)
	}
}

func TestWarnBandPassesWithWarning(t *testing.T) {
	code, out := runDiff(t, td("baseline.json"), td("cand_warn.json"))
	if code != 0 {
		t.Fatalf("warn-band regression should pass, exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "WARN  fabric/p99_ns") {
		t.Fatalf("p99 inside warn band not warned:\n%s", out)
	}
	if !strings.Contains(out, "WARN  fabric/op[wbr-16].virtual_ns") {
		t.Fatalf("op virtual cost inside warn band not warned:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	code, out := runDiff(t, td("baseline.json"), td("cand_fail.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  fabric/ops_per_sec") {
		t.Fatalf("throughput regression not failed:\n%s", out)
	}
	if !strings.Contains(out, "FAIL  fabric/p99_ns") {
		t.Fatalf("p99 regression not failed:\n%s", out)
	}
}

func TestMissingTrackedOpFails(t *testing.T) {
	code, out := runDiff(t, td("baseline.json"), td("cand_missing_op.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  fabric/op[wbr-16]: tracked op missing") {
		t.Fatalf("missing tracked op not failed:\n%s", out)
	}
}

func TestWallRuleOnlyWhenBothSidesCarryIt(t *testing.T) {
	// Both sides carry wall_ns: the wall rule applies and a 28% wall
	// regression fails even though virtual costs are identical.
	code, out := runDiff(t, td("baseline_wall.json"), td("cand_wall_fail.json"))
	if code != 1 {
		t.Fatalf("wall regression with both sides armed: exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL  fabric/op[read-hit].wall_ns") {
		t.Fatalf("wall regression not failed:\n%s", out)
	}

	// Candidate has no wall numbers (the committed-artifact shape): the
	// wall rule must not fire at all.
	code, out = runDiff(t, td("baseline_wall.json"), td("cand_wall_absent.json"))
	if code != 0 {
		t.Fatalf("virtual-only candidate against wall baseline: exit %d, want 0:\n%s", code, out)
	}
	if strings.Contains(out, "wall_ns") {
		t.Fatalf("wall rule fired without both sides carrying wall_ns:\n%s", out)
	}
}

func TestMalformedArtifactRefusedNotCompared(t *testing.T) {
	// A zeroed candidate must be refused (exit 2), never "compared" —
	// otherwise a broken bench writer reads as a clean run.
	code, out := runDiff(t, td("baseline.json"), td("malformed.json"))
	if code != 2 {
		t.Fatalf("exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "refusing candidate") {
		t.Fatalf("refusal not reported:\n%s", out)
	}

	// Same for a baseline, and for unparsable JSON.
	if code, _ := runDiff(t, td("malformed.json"), td("cand_pass.json")); code != 2 {
		t.Fatalf("malformed baseline: exit %d, want 2", code)
	}
	garbage := filepath.Join(t.TempDir(), "BENCH_garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runDiff(t, td("baseline.json"), garbage); code != 2 {
		t.Fatalf("unparsable candidate: exit %d, want 2:\n%s", code, out)
	}
}

func TestMissingSweepRowFails(t *testing.T) {
	code, out := runDiff(t, td("rows_base.json"), td("rows_cand_missing_row.json"))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "row[nodes=8,load=400000]: tracked row missing") {
		t.Fatalf("missing sweep row not failed:\n%s", out)
	}
}

func TestAdvisoryBenchReportsButNeverFails(t *testing.T) {
	code, out := runDiff(t, "-advisory", "fabric,redisrack",
		td("baseline.json"), td("cand_fail.json"))
	if code != 0 {
		t.Fatalf("advisory bench set exit %d, want 0:\n%s", code, out)
	}
	// The regressions must still be visible — advisory mutes the exit
	// code, not the report.
	if !strings.Contains(out, "FAIL  fabric/ops_per_sec") {
		t.Fatalf("advisory bench regression not reported:\n%s", out)
	}
	if !strings.Contains(out, "ADVISORY fabric") {
		t.Fatalf("advisory downgrade not announced:\n%s", out)
	}
}

func TestDirModePairsEveryBaseline(t *testing.T) {
	baseDir := t.TempDir()
	candDir := t.TempDir()
	cp := func(src, dstDir, dstName string) {
		t.Helper()
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, dstName), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cp(td("baseline.json"), baseDir, "BENCH_fabric.json")
	cp(td("rows_base.json"), baseDir, "BENCH_redisscale.json")
	cp(td("cand_pass.json"), candDir, "BENCH_fabric.json")
	cp(td("rows_base.json"), candDir, "BENCH_redisscale.json")

	code, out := runDiff(t, "-baseline-dir", baseDir, "-candidate-dir", candDir)
	if code != 0 {
		t.Fatalf("exit %d, want 0:\n%s", code, out)
	}
	for _, name := range []string{"fabric/ops_per_sec", "redisscale/ops_per_sec"} {
		if !strings.Contains(out, name) {
			t.Fatalf("dir mode skipped %s:\n%s", name, out)
		}
	}

	// One regressed candidate in the set fails the whole run.
	cp(td("cand_fail.json"), candDir, "BENCH_fabric.json")
	if code, out := runDiff(t, "-baseline-dir", baseDir, "-candidate-dir", candDir); code != 1 {
		t.Fatalf("regressed member of dir set: exit %d, want 1:\n%s", code, out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _ := runDiff(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code, _ := runDiff(t, td("baseline.json")); code != 2 {
		t.Fatalf("one positional: exit %d, want 2", code)
	}
	if code, _ := runDiff(t, "-baseline-dir", t.TempDir(), "-candidate-dir", t.TempDir()); code != 2 {
		t.Fatalf("empty baseline dir: exit %d, want 2", code)
	}
}
