// Command flacvet vets arena code against the coherence discipline of
// the non-coherent fabric: no Go pointers in the arena, write-back
// before publishing atomics, invalidate before decoding published
// bytes, no arena offsets retained past their grace period. See
// internal/coherlint for the rules and the annotation syntax, and
// DESIGN.md "The coherence contract".
//
// Usage:
//
//	go run ./cmd/flacvet ./...
//	go run ./cmd/flacvet -rules read-without-invalidate ./internal/flacdk/ds
//
// It exits 1 when any diagnostic is reported, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"flacos/internal/coherlint"
)

func main() {
	var (
		rules = flag.String("rules", "all", "comma-separated analyzer names to run (default: the whole suite)")
		dir   = flag.String("C", ".", "directory to resolve package patterns from (the module root)")
		list  = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()
	if *list {
		for _, a := range coherlint.All() {
			fmt.Printf("%-28s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := coherlint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flacvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := coherlint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flacvet:", err)
		os.Exit(2)
	}
	diags, err := coherlint.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flacvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flacvet: %d coherence-contract violation(s)\n", len(diags))
		os.Exit(1)
	}
}
