module flacos

go 1.23
