// Package flacos is a Go reproduction of "Towards Rack-as-a-Computer in
// Memory Interconnect Era with Coordinated Operating System Sharing"
// (HotStorage '25): FlacOS, a partially shared operating system for
// memory-interconnected rack-scale machines, together with the simulated
// non-coherent fabric it runs on, the network baselines it is evaluated
// against, and the full experiment harness regenerating the paper's
// evaluation.
//
// Start with internal/core (the OS facade), cmd/rackctl (a guided tour),
// and cmd/flacbench (the paper's tables and figures). DESIGN.md maps the
// paper's systems to packages; EXPERIMENTS.md records paper-vs-measured
// results.
package flacos
