// Rediscompare runs the paper's Figure 4 end to end on the public API: a
// mini-Redis server on node 0 serving a client on node 1, first over the
// simulated TCP/IP stack, then over FlacOS zero-copy IPC, printing the
// per-request latency and the FlacOS speedup.
package main

import (
	"fmt"
	"log"

	"flacos/internal/experiments"
)

func main() {
	fmt.Println("Redis across the rack: TCP networking vs FlacOS IPC")
	fmt.Println("(server on node 0, client on node 1, values 64B and 4KiB)")
	fmt.Println()

	res := experiments.Fig4(experiments.Fig4Config{
		Requests:   1000,
		ValueSizes: []int{64, 4096},
	})
	fmt.Println(res.String())

	fmt.Println("The paper reports FlacOS cutting Redis latency 1.75-2.4x on a")
	fmt.Println("real 640-core HCCS rack; the simulation reproduces the shape:")
	for k, v := range res.Ratios {
		if v < 1.3 {
			log.Fatalf("unexpected: %s only %.2fx", k, v)
		}
	}
	fmt.Println("every SET/GET size shows FlacOS ahead by a similar factor.")
}
