// Mmapfile demonstrates file-backed memory mappings over the shared page
// cache: two nodes map the same "shared library" file into their own
// address spaces — both mappings resolve to THE SAME physical frame (one
// copy rack-wide) — and a write from one node copy-on-writes a private
// page without disturbing the file or the other node's mapping.
package main

import (
	"bytes"
	"fmt"
	"log"

	"flacos/internal/core"
	"flacos/internal/memsys"
)

func main() {
	rack := core.Boot(core.Config{Nodes: 2})
	osA, osB := rack.OS(0), rack.OS(1)

	// A shared library everyone maps.
	id, err := osA.Mount.Create("/lib/libml.so")
	if err != nil {
		log.Fatal(err)
	}
	lib := bytes.Repeat([]byte{0xC3}, 4*memsys.PageSize)
	copy(lib, "\x7fELF model weights + code")
	osA.Mount.Write(id, 0, lib)
	fmt.Printf("wrote %d KiB to /lib/libml.so (%d pages in the shared cache)\n\n",
		len(lib)/1024, rack.FS.CachedPages(osA.Node))

	// Each node maps the library into its own address space (like two
	// processes mapping one .so).
	spaceA, spaceB := rack.NewSpace(), rack.NewSpace()
	spaceA.SetPageSource(osA.Mount)
	spaceB.SetPageSource(osB.Mount)
	mmuA, mmuB := osA.Attach(spaceA), osB.Attach(spaceB)
	const va = 0x7f00_0000 // page-aligned mapping address
	if err := mmuA.MMapFile(va, 4, memsys.ProtRead|memsys.ProtWrite, id, 0); err != nil {
		log.Fatal(err)
	}
	if err := mmuB.MMapFile(va, 4, memsys.ProtRead|memsys.ProtWrite, id, 0); err != nil {
		log.Fatal(err)
	}

	bufA := make([]byte, 26)
	bufB := make([]byte, 26)
	mmuA.Read(va, bufA)
	mmuB.Read(va, bufB)
	fmt.Printf("node 0 maps: %q\nnode 1 maps: %q\n", bufA, bufB)
	frameA, frameB := mmuA.PTEOf(va).GlobalPhys(), mmuB.PTEOf(va).GlobalPhys()
	fmt.Printf("both nodes map physical frame %#x == %#x: %v (one copy rack-wide)\n\n",
		frameA, frameB, frameA == frameB)

	// Node 1 patches its view: MAP_PRIVATE copy-on-write.
	if err := mmuB.Write(va, []byte("node-1-private-patch")); err != nil {
		log.Fatal(err)
	}
	mmuA.Read(va, bufA)
	mmuB.Read(va, bufB)
	fileHead := make([]byte, 26)
	osA.Mount.Read(id, 0, fileHead)
	fmt.Printf("after node 1 writes:\n")
	fmt.Printf("  node 0 still maps: %q\n", bufA)
	fmt.Printf("  node 1 now maps  : %q\n", bufB)
	fmt.Printf("  file on disk     : %q (untouched)\n", fileHead)
	fmt.Printf("  node 1's frame   : %#x (private copy, was %#x)\n",
		mmuB.PTEOf(va).GlobalPhys(), frameB)
	fmt.Printf("  COW breaks on node 1: %d\n", mmuB.Stats().COWBreaks)
}
