// Faulttolerance walks the paper's reliability story (§3.6) end to end:
// silent memory corruption caught by the scrubber, a fault box surviving
// its host node's crash through cross-node recovery, n-modular execution
// outvoting a corrupt replica, and blast-radius isolation between boxes.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/faultbox"
	"flacos/internal/flacdk/reliability"
)

// appState is the demo application's logical state.
type appState struct{ requestsServed uint64 }

func (a *appState) Snapshot() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], a.requestsServed)
	return b[:]
}
func (a *appState) Restore(b []byte) { a.requestsServed = binary.LittleEndian.Uint64(b) }

func main() {
	rack := core.Boot(core.Config{Nodes: 3, FaultSeed: 42})
	fmt.Printf("rack up: %d nodes\n\n", rack.Nodes())

	// --- 1. Scrubbing detects silent corruption in global memory ---
	fmt.Println("== scrubbing & detection")
	g := rack.Fabric.Reserve(256, 64)
	rack.Fabric.WriteAtHome(g, []byte("precious kernel metadata"))
	region := reliability.Region{G: g, Size: 256}
	rack.Scrubber.Protect(region)
	rack.Fabric.Faults().FlipBitAtHome(rack.Fabric, g.Add(64), 3) // a cosmic ray
	bad := rack.Scrubber.ScrubOnce()
	fmt.Printf("scrub found %d corrupted region(s); repairing...\n", len(bad))
	good := make([]byte, 256)
	copy(good, []byte("precious kernel metadata"))
	rack.Scrubber.Repair(region, good)
	fmt.Printf("after repair: %d corrupted region(s)\n\n", len(rack.Scrubber.ScrubOnce()))

	// --- 2. A fault box survives its host's death ---
	fmt.Println("== fault box crash recovery")
	app := &appState{}
	box, err := rack.Boxes.Create("payments", rack.Fabric.Node(0), faultbox.Config{
		HeapPages: 8, StackPages: 2, Criticality: 2, // -> eager replication
	}, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("box %q on node 0, redundancy=%v\n", box.Name, box.Redundancy())
	box.MMU().Write(faultbox.HeapVA, []byte("ledger: alice=100 bob=42"))
	app.requestsServed = 1337
	if err := box.Quiesce(); err != nil { // eager checkpoint under RedReplicate
		log.Fatal(err)
	}
	rack.Fabric.Node(0).Crash()
	fmt.Println("node 0 crashed (its caches and local state are gone)")

	app2 := &appState{}
	recovered, err := box.RecoverOn(rack.Fabric.Node(1), app2, nil)
	if err != nil {
		log.Fatal(err)
	}
	ledger := make([]byte, 24)
	recovered.MMU().Read(faultbox.HeapVA, ledger)
	fmt.Printf("recovered on node %d: heap=%q app.requestsServed=%d\n\n",
		recovered.Node().ID(), ledger, app2.requestsServed)

	// --- 3. N-modular execution outvotes a corrupt replica ---
	fmt.Println("== n-modular execution")
	nodes := []*fabric.Node{rack.Fabric.Node(1), rack.Fabric.Node(2), rack.Fabric.Node(1)}
	out, err := faultbox.NModularCall(nodes, func(n *fabric.Node) []byte {
		if n.ID() == 2 {
			return []byte("CORRUPTED-RESULT") // one replica went bad
		}
		return []byte("42")
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 replicas voted; majority answer: %q\n\n", out)

	// --- 4. Fault isolation: destroying one box leaves others intact ---
	fmt.Println("== blast radius")
	bystander, _ := rack.Boxes.Create("analytics", rack.Fabric.Node(2), faultbox.Config{
		HeapPages: 4, StackPages: 1,
	}, nil)
	bystander.MMU().Write(faultbox.HeapVA, []byte("unrelated data"))
	recovered.Destroy() // the faulty app is torn down as one unit
	check := make([]byte, 14)
	bystander.MMU().Read(faultbox.HeapVA, check)
	fmt.Printf("after destroying %q, bystander still has %q (boxes left: %d)\n",
		"payments", check, rack.Boxes.Boxes())
}
