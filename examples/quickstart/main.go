// Quickstart: boot a two-node FlacOS rack and touch each shared subsystem
// once — a file visible on both nodes through the shared page cache, a
// zero-copy IPC round trip, and a rack-wide shared address space.
package main

import (
	"fmt"
	"log"

	"flacos/internal/core"
	"flacos/internal/memsys"
)

func main() {
	// One rack: two nodes joined by a non-coherent memory interconnect.
	rack := core.Boot(core.Config{Nodes: 2})
	nodeA, nodeB := rack.OS(0), rack.OS(1)
	fmt.Printf("FlacOS rack up: %d nodes, %d MiB global memory\n\n",
		rack.Nodes(), rack.Fabric.Size()>>20)

	// 1. The file system is one instance rack-wide: a file created on node
	// A is immediately visible on node B, and its pages live exactly once
	// in the shared page cache.
	id, err := nodeA.Mount.Create("/shared/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	nodeA.Mount.Write(id, 0, []byte("written by node A"))
	buf := make([]byte, 64)
	n, _ := nodeB.Mount.Read(id, 0, buf)
	fmt.Printf("file system : node B reads %q\n", buf[:n])

	// 2. IPC crosses nodes through shared data buffers: no sockets, no
	// copies through a network stack.
	l, err := nodeA.Endpoint.Bind("hello.svc")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go func() {
		c := l.Accept()
		rb := make([]byte, 64)
		if n, err := c.Recv(rb); err == nil {
			c.Send(append(rb[:n], " (echoed by node A)"...))
		}
	}()
	conn, err := nodeB.Endpoint.Connect("hello.svc")
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.Send([]byte("ping from node B"))
	n, _ = conn.Recv(buf)
	fmt.Printf("ipc          : %q\n", buf[:n])

	// 3. One address space spanning the rack: node A maps and writes, node
	// B reads the same virtual address through the shared page table.
	space := rack.NewSpace()
	mmuA, mmuB := nodeA.Attach(space), nodeB.Attach(space)
	const va = 0x4000_0000
	if err := mmuA.MMap(va, 1, memsys.ProtRead|memsys.ProtWrite, memsys.BackGlobal); err != nil {
		log.Fatal(err)
	}
	mmuA.Write(va, []byte("one VA space"))
	out := make([]byte, 12)
	mmuB.Read(va, out)
	fmt.Printf("memory       : node B reads %q at va %#x\n", out, va)

	// The fabric kept score of everything the OS did.
	s := rack.Fabric.RackStats()
	fmt.Printf("\nfabric totals: %d loads, %d stores, %d atomics, %d write-backs\n",
		s.Loads, s.Stores, s.Atomics, s.WriteBacks)
}
