// Serverless demonstrates the paper's case study (§4.1): a rack-level
// serverless platform where container images flow through the FlacOS
// shared page cache, functions scale across nodes instantly, and service
// chains run over migration RPC instead of the network.
package main

import (
	"fmt"
	"log"

	"flacos/internal/core"
	"flacos/internal/fabric"
	"flacos/internal/serverless"
)

func main() {
	rack := core.Boot(core.Config{
		Nodes:           2,
		GlobalMemory:    512 << 20,
		PageCacheFrames: 40000,
	})

	// A registry holding a 64 MiB "pytorch" image over a slow WAN link.
	registry := serverless.NewRegistry(100_000_000, 0.01) // 100ms RTT, 10 MB/s
	registry.Push(serverless.SyntheticImage("pytorch", 6, 64<<20))
	rtCfg := serverless.DefaultRuntimeConfig()
	rtCfg.InitNS = 500_000_000 // 0.5 s runtime boot

	ctl := rack.Serverless(registry, rtCfg)

	// Deploy an inference pipeline: three functions sharing the image.
	stages := []string{"preprocess", "infer", "postprocess"}
	for _, name := range stages {
		name := name
		if _, err := ctl.Deploy(name, "pytorch", func(n *fabric.Node, req []byte) []byte {
			return append(req, ("|" + name)...)
		}); err != nil {
			log.Fatal(err)
		}
	}

	// First invocation: scale from zero — a cold start that pulls the
	// image from the registry.
	fmt.Println("invoking chain (cold start on first node)...")
	out, err := ctl.InvokeChain(rack.Fabric.Node(0), stages, []byte("img-001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain output: %q\n\n", out)

	// Scale each stage out to the second node: the image is already in the
	// rack's shared page cache, so no registry traffic happens at all.
	fmt.Println("scaling every stage to a second instance...")
	for _, name := range stages {
		rep, err := ctl.ScaleUp(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s -> %s\n", name, rep)
	}
	fmt.Printf("\ninstance density per node: %v\n", ctl.Density())

	// Invocations run from either node via the shared code context.
	out, err = ctl.InvokeChain(rack.Fabric.Node(1), stages, []byte("img-002"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chain from node 1: %q\n", out)
	fmt.Printf("registry requests total: %d (scale-out added only manifest checks)\n",
		registry.LayerPulls())
}
